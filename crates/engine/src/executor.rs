//! The synchronous round executor.

use crate::error::EngineError;
use crate::eval::{evaluate_model, fixed_subsample, EVAL_CHUNK};
use crate::metrics::EvalStats;
use crate::node::Node;
use crate::transport::{
    corrupt_frame_in_place, decode_frame, encode_message_into, rarity_k, tier_codec,
    CompressionPolicy, ErrorFeedbackState, MessageFate, ModelCodec, Payload, TransportKind,
};
use rayon::prelude::*;
use skiptrain_data::Dataset;
use skiptrain_energy::battery::{BatteryPolicy, BatterySetup, BatteryState, ParticipationState};
use skiptrain_energy::comm::CommEnergyModel;
use skiptrain_energy::trace::HarvestTrace;
use skiptrain_energy::EnergyLedger;
use skiptrain_linalg::compress::{
    accumulate_delta, compress_with_feedback_top_k, compress_with_feedback_u16,
    compress_with_feedback_u8, dequantize_u16, dequantize_u8, gather_into, quantize_u16_into,
    quantize_u8_into, scatter_axpy, sparse_blend_axpy, top_k_indices_into, FeedbackScratch,
};
use skiptrain_nn::sgd::SgdConfig;
use skiptrain_nn::{Sequential, SoftmaxCrossEntropy};
use skiptrain_topology::{Graph, MixingMatrix};
use std::sync::Arc;

/// What a node does in the local-compute phase of a round.
///
/// Every round ends with share + aggregate regardless of the action
/// (Lines 12–13 of Algorithm 2); the action only controls Lines 5–11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundAction {
    /// Run `E` local SGD steps (a training round for this node).
    Train,
    /// Skip training; share the current model as-is (synchronization).
    SyncOnly,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Master seed; all node/round randomness derives from it.
    pub seed: u64,
    /// Mini-batch size `|ξ|`.
    pub batch_size: usize,
    /// Local SGD steps per training round `E`.
    pub local_steps: usize,
    /// Optimizer settings (the paper uses plain SGD).
    pub sgd: SgdConfig,
    /// Message transport.
    pub transport: TransportKind,
    /// Per-directed-link codec selection policy for the share phase.
    /// [`CompressionPolicy::Uniform`] reproduces the legacy global-codec
    /// behaviour bit-for-bit (single shared share phase, one byte quote);
    /// the adaptive policies resolve a codec per directed link per round
    /// and charge each link's ledger bytes from the codec it actually
    /// used. Lossy codecs feed their reconstruction into the aggregation
    /// (compression error genuinely propagates through training) and
    /// shrink the per-message bytes the energy ledger charges.
    pub compression: CompressionPolicy,
    /// Consensus stepsize γ ∈ (0, 1] applied after aggregation:
    /// `x^t = x^{t−½} + γ (Σ_j W_ji x_j^{t−½} − x^{t−½})`. `1.0` (the
    /// default) is the paper's plain mixing update and skips the blend
    /// entirely (bit-identical to the pre-γ executor); CHOCO-SGD-style
    /// damped consensus (γ < 1) keeps extreme sparsity stable.
    pub consensus_gamma: f32,
    /// `Some(β)` enables CHOCO-SGD-style error-feedback compression:
    /// every directed link tracks a replica of the sender's model,
    /// compresses the accumulated residual `model − replica` instead of
    /// the raw model, and folds the delivered part back (`β ∈ (0, 1]`,
    /// `1.0` = full error feedback). What the codec failed to deliver
    /// stays in the next residual, so aggressive sparsification stops
    /// starving low-magnitude coordinates. Link-local state — message
    /// bytes and energy charges are unchanged. A no-op for the lossless
    /// [`ModelCodec::DenseF32`] (the residual would stay zero), which
    /// keeps its zero-copy fast path.
    pub feedback_beta: Option<f32>,
    /// Per-receiver replica cap for error feedback: at most this many
    /// in-links per node keep a replica; the stalest link (oldest
    /// delivery) is evicted when a new one would exceed the cap and
    /// restarts cold on its next delivery. Bounds feedback memory at
    /// `nodes × cap` model vectors under time-varying topologies (the
    /// uncapped state grew one replica per distinct directed link,
    /// forever). `None` derives a never-evicting default from the
    /// simulation's graph — `max(max degree,`
    /// [`DEFAULT_REPLICA_CAP`](crate::transport::DEFAULT_REPLICA_CAP)`)`
    /// — since an explicit cap below the in-degree trades residual
    /// memory for feedback quality (links restart cold). Ignored unless
    /// `feedback_beta` is set.
    pub feedback_replica_cap: Option<usize>,
    /// Per-node training energy per round (Wh); empty disables training
    /// energy accounting.
    pub training_energy_wh: Vec<f64>,
    /// Radio energy model for the share/aggregate phase.
    pub comm_energy: CommEnergyModel,
    /// Nominal parameter count for message-size accounting; `None` uses the
    /// actual simulated model size. (The paper's energy traces are defined
    /// for Table 1's |x|, which may exceed the reduced simulation models.)
    pub nominal_params: Option<usize>,
    /// `Some` enables closed-loop battery gating: each round the fleet
    /// recharges from the harvest trace, the policy picks a participation
    /// set from the charge fractions, and non-participants neither train
    /// nor fire edges (the round's effective mixing is masked, so the
    /// per-edge energy accounting and error-feedback replicas see only
    /// the edges that really fired). After the round, every node's actual
    /// ledger spend (training + tx + rx) drains its battery.
    pub battery: Option<BatterySetup>,
}

impl SimulationConfig {
    /// A minimal config for tests: no energy accounting, in-memory
    /// transport.
    pub fn minimal(seed: u64, batch_size: usize, local_steps: usize, lr: f32) -> Self {
        Self {
            seed,
            batch_size,
            local_steps,
            sgd: SgdConfig::plain(lr),
            transport: TransportKind::Memory,
            compression: CompressionPolicy::default(),
            consensus_gamma: 1.0,
            feedback_beta: None,
            feedback_replica_cap: None,
            training_energy_wh: Vec::new(),
            comm_energy: CommEnergyModel::paper_fit(),
            nominal_params: None,
            battery: None,
        }
    }
}

/// The battery feedback loop's engine-side runtime: the evolving charge
/// state plus the reusable per-round buffers the gating path writes into
/// (allocation-free at steady state — charge updates are O(n) per round).
#[derive(Debug, Clone)]
struct BatteryRuntime {
    state: BatteryState,
    trace: HarvestTrace,
    policy: BatteryPolicy,
    /// Per-node policy overrides for heterogeneous fleets (one per node
    /// when set; validated at construction).
    node_policies: Option<Vec<BatteryPolicy>>,
    pstate: ParticipationState,
    /// Last round's participation mask.
    active: Vec<bool>,
    /// Gated actions handed to the phases (non-participants → SyncOnly).
    actions: Vec<RoundAction>,
    /// Participation-masked effective mixing for the round.
    masked: MixingMatrix,
    /// Per-node (training + comm) Wh already drained from the ledger.
    settled_wh: Vec<f64>,
    /// Total node-rounds of participation.
    participations: u64,
    /// Brown-out events: train intents the charge could not cover.
    brownouts: u64,
}

impl BatteryRuntime {
    fn new(setup: BatterySetup, n: usize) -> Self {
        assert_eq!(setup.state.len(), n, "one battery per node required");
        assert_eq!(setup.trace.len(), n, "one harvest stream per node required");
        if let Some(policies) = &setup.node_policies {
            assert_eq!(policies.len(), n, "one policy per node required");
        }
        Self {
            pstate: ParticipationState::new(n),
            active: Vec::with_capacity(n),
            actions: Vec::with_capacity(n),
            masked: MixingMatrix::identity(n),
            settled_wh: vec![0.0; n],
            participations: 0,
            brownouts: 0,
            state: setup.state,
            trace: setup.trace,
            policy: setup.policy,
            node_policies: setup.node_policies,
        }
    }

    /// Pre-round gating: recharge from the harvest trace, decide the
    /// participation set, brown-out nodes that cannot afford their
    /// intended round, then materialize the gated actions and the masked
    /// effective mixing.
    ///
    /// A node that intended to *train* but holds less charge than its
    /// per-round training cost burns its remaining charge (the attempted
    /// partial round is lost work) and drops out; a sync-only intent just
    /// needs nonzero charge to key the radio.
    fn begin_round(
        &mut self,
        round: usize,
        intended: &[RoundAction],
        base: &MixingMatrix,
        training_energy_wh: &[f64],
    ) {
        let n = self.state.len();
        for i in 0..n {
            self.state.recharge(i, self.trace.energy_wh(i, round));
        }
        match &self.node_policies {
            Some(policies) => skiptrain_energy::battery::decide_per_node_into(
                policies,
                &self.state,
                &mut self.pstate,
                &mut self.active,
            ),
            None => self
                .policy
                .decide_into(&self.state, &mut self.pstate, &mut self.active),
        }
        for (i, intent) in intended.iter().enumerate() {
            if !self.active[i] {
                continue;
            }
            match intent {
                RoundAction::Train => {
                    let cost = training_energy_wh.get(i).copied().unwrap_or(0.0);
                    if self.state.charge_wh(i) < cost {
                        self.state.drain_all(i);
                        self.active[i] = false;
                        self.brownouts += 1;
                    }
                }
                RoundAction::SyncOnly => {
                    if self.state.charge_wh(i) <= 0.0 {
                        self.active[i] = false;
                    }
                }
            }
        }
        self.actions.clear();
        self.actions
            .extend(intended.iter().zip(&self.active).map(|(&a, &on)| {
                if on {
                    a
                } else {
                    RoundAction::SyncOnly
                }
            }));
        self.participations += self.active.iter().filter(|&&on| on).count() as u64;
        base.masked_into(&self.active, &mut self.masked);
    }

    /// Post-round drain: debit each node's battery with what the round
    /// actually cost it, read as the delta of the ledger's cumulative
    /// per-node training + comm energy since the last settle.
    fn settle(&mut self, ledger: &EnergyLedger) {
        for i in 0..self.state.len() {
            let total = ledger.node_training_wh(i) + ledger.node_comm_wh(i);
            let delta = total - self.settled_wh[i];
            if delta > 0.0 {
                self.state.drain(i, delta);
            }
            self.settled_wh[i] = total;
        }
    }
}

/// What the share phase produced for the aggregation to read.
enum Shared {
    /// Zero-copy: read half-step models directly (Memory + DenseF32).
    Direct,
    /// One dense (possibly lossily reconstructed) model per sender;
    /// non-senders hold an empty vector and are never read.
    Dense(Vec<Vec<f32>>),
    /// One sparse top-k `(indices, values)` message per sender.
    Sparse(Vec<(Vec<u32>, Vec<f32>)>),
}

/// Per-receiver reusable buffers for the error-feedback share path, which
/// compresses each directed edge separately (the per-link replicas make
/// every link's payload unique). All buffers retain capacity across
/// rounds, keeping the feedback path allocation-free at steady state on
/// the in-memory transport.
#[derive(Debug, Clone, Default)]
struct EdgeScratch {
    /// Residual accumulation scratch (`model − replica`).
    fb: FeedbackScratch,
    /// Top-k payload indices.
    indices: Vec<u32>,
    /// Top-k payload values.
    values: Vec<f32>,
    /// Dense reconstruction (quantized codecs).
    recon: Vec<f32>,
    /// u8 quantization codes.
    codes8: Vec<u8>,
    /// u16 quantization codes.
    codes16: Vec<u16>,
    /// Wire-frame buffer (serialized transport).
    frame: Vec<u8>,
}

/// Collects per-sender payloads into the codec's aggregation shape.
/// `None` entries are non-senders (no off-diagonal mixing weight anywhere).
fn pack_payloads(codec: ModelCodec, payloads: Vec<Option<Payload>>) -> Shared {
    match codec {
        ModelCodec::TopK { .. } => Shared::Sparse(
            payloads
                .into_iter()
                .map(|p| match p {
                    Some(Payload::Sparse { indices, values }) => (indices, values),
                    None => (Vec::new(), Vec::new()),
                    // lint:allow(no_panic, "codec/payload correspondence is fixed by ModelCodec::transform")
                    Some(Payload::Dense(_)) => unreachable!("top-k codec produced dense payload"),
                })
                .collect(),
        ),
        _ => Shared::Dense(
            payloads
                .into_iter()
                .map(|p| match p {
                    Some(Payload::Dense(model)) => model,
                    None => Vec::new(),
                    Some(Payload::Sparse { .. }) => {
                        // lint:allow(no_panic, "codec/payload correspondence is fixed by ModelCodec::transform")
                        unreachable!("dense codec produced sparse payload")
                    }
                })
                .collect(),
        ),
    }
}

/// The synchronous decentralized simulation: nodes, their model replicas as
/// flat parameter vectors, the mixing topology, and the energy ledger.
pub struct Simulation {
    config: SimulationConfig,
    nodes: Vec<Node>,
    graph: Graph,
    mixing: MixingMatrix,
    /// Committed models `x^t`, one flat vector per node.
    params: Vec<Vec<f32>>,
    /// Half-step models `x^{t−½}` produced by the local-compute phase.
    half: Vec<Vec<f32>>,
    /// Aggregation output buffers (swapped into `params` at round end).
    next: Vec<Vec<f32>>,
    ledger: EnergyLedger,
    round: usize,
    param_count: usize,
    loss_fn: SoftmaxCrossEntropy,
    /// Mean training loss over the training nodes of the last round.
    last_train_loss: Option<f32>,
    /// Reusable phase-2 sender bitmap (who appears off-diagonal anywhere).
    sender_flags: Vec<bool>,
    /// Reusable per-node wire-frame buffers for the serialized transport.
    encode_scratch: Vec<Vec<u8>>,
    /// Reusable per-node phase-3 neighbor-index scratch.
    agg_indices: Vec<Vec<u32>>,
    /// Reusable per-node phase-3 mixing-weight scratch.
    agg_weights: Vec<Vec<f32>>,
    /// Reusable mean-model buffer for [`Simulation::evaluate_mean_model`].
    mean_scratch: Vec<f32>,
    /// Per-directed-link error-feedback replicas, when enabled.
    feedback: Option<ErrorFeedbackState>,
    /// Per-receiver reusable buffers for the per-edge feedback share path.
    edge_scratch: Vec<EdgeScratch>,
    /// Closed-loop battery gating runtime, when configured.
    battery: Option<BatteryRuntime>,
    /// Sorted directed edges whose message missed the current round's
    /// deadline (set by [`Simulation::try_run_round_event`], empty
    /// otherwise). A late edge is treated exactly like a transport drop:
    /// tx charged, no rx, weight folds to self, feedback replicas hold.
    late_edges: Vec<(u32, u32)>,
    /// Virtual round-end tick supplied by the event engine for the round
    /// in flight; stamps the ledger's per-round close.
    virtual_round_end: Option<u64>,
    /// Cumulative count of on-time messages the transport corrupted (each
    /// rejected by the receive-side checksum and degraded to a drop).
    corrupted_frames: u64,
    /// Per-receiver codecs resolved for the current round, aligned
    /// position-for-position with each receiver's mixing row (diagonal
    /// entries hold a placeholder and are never read). Filled by
    /// [`Simulation::resolve_link_codecs`] on every adaptive-policy round
    /// and read by both the share phase and the energy accounting, so the
    /// bytes charged always match the codec a link actually used. Empty
    /// under [`CompressionPolicy::Uniform`].
    round_codecs: Vec<Vec<ModelCodec>>,
    /// Per-receiver `(sender, fires)` counters, sorted by sender, for
    /// [`CompressionPolicy::RarityAdaptive`]: how many rounds each
    /// directed link has been on the effective mixing so far (including
    /// the current round — counts bump before resolution).
    link_fires: Vec<Vec<(u32, u64)>>,
    /// Per-node battery charge fraction snapshot taken after the round's
    /// recharge (1.0 everywhere without battery gating), read by
    /// [`CompressionPolicy::EnergyAdaptive`] resolution.
    charge_fractions: Vec<f64>,
    /// [`CompressionPolicy::PerLink`] table lowered to a binary-searchable
    /// form at construction: `(src << 32 | dst, codec)`, sorted by key.
    link_table: Vec<(u64, ModelCodec)>,
    /// Per-node local-loss slots for phase 1 (`None` for sync-only
    /// nodes), reused every round so the compute phase stays
    /// allocation-free.
    loss_scratch: Vec<Option<f32>>,
}

/// Directed-link key for the lowered per-link codec table.
#[inline]
fn link_key(src: u32, dst: u32) -> u64 {
    (src as u64) << 32 | dst as u64
}

/// True unless the event layer marked directed edge `src → dst` late this
/// round. `late` is sorted; the empty fast path covers every non-event
/// round.
#[inline]
fn edge_on_time(late: &[(u32, u32)], src: usize, dst: usize) -> bool {
    late.is_empty() || late.binary_search(&(src as u32, dst as u32)).is_err()
}

impl Simulation {
    /// Builds a simulation from owned per-node datasets.
    ///
    /// `models` and `datasets` must have one entry per topology node, and
    /// all models must share one architecture (identical parameter counts).
    ///
    /// # Panics
    /// Panics on any arity or shape mismatch.
    pub fn new(
        models: Vec<Sequential>,
        datasets: Vec<Dataset>,
        graph: Graph,
        mixing: MixingMatrix,
        config: SimulationConfig,
    ) -> Self {
        Self::with_shared_data(
            models,
            datasets.into_iter().map(Arc::new).collect(),
            graph,
            mixing,
            config,
        )
    }

    /// Builds a simulation over `Arc`-shared per-node datasets — the
    /// zero-copy path campaigns use to run many experiments against one
    /// materialized data bundle.
    ///
    /// # Panics
    /// Panics on any arity or shape mismatch (see [`Simulation::new`]).
    pub fn with_shared_data(
        models: Vec<Sequential>,
        datasets: Vec<Arc<Dataset>>,
        graph: Graph,
        mixing: MixingMatrix,
        config: SimulationConfig,
    ) -> Self {
        let n = graph.len();
        assert!(n > 0, "empty topology");
        assert_eq!(models.len(), n, "one model per node required");
        assert_eq!(datasets.len(), n, "one dataset per node required");
        assert_eq!(mixing.len(), n, "mixing matrix size mismatch");
        if !config.training_energy_wh.is_empty() {
            assert_eq!(
                config.training_energy_wh.len(),
                n,
                "per-node energy size mismatch"
            );
        }
        let param_count = models[0].param_count();
        assert!(
            models.iter().all(|m| m.param_count() == param_count),
            "all nodes must share one architecture"
        );
        let num_classes = models[0].output_dim();

        let params: Vec<Vec<f32>> = models.iter().map(|m| m.flat_params()).collect();
        let half = params.clone();
        let next = params.clone();
        let nodes: Vec<Node> = models
            .into_iter()
            .zip(datasets)
            .enumerate()
            .map(|(i, (model, data))| {
                Node::new(i, model, data, config.batch_size, config.sgd, config.seed)
            })
            .collect();

        // The unset default never evicts on this simulation's own graph
        // (lazy allocation already bounds replicas at the actual link
        // census there); only an explicit sub-degree cap trades residual
        // memory for cold restarts.
        let feedback = config.feedback_beta.map(|beta| {
            let cap = config.feedback_replica_cap.unwrap_or_else(|| {
                graph
                    .degree_range()
                    .1
                    .max(crate::transport::DEFAULT_REPLICA_CAP)
            });
            ErrorFeedbackState::with_cap(n, beta, cap)
        });

        let battery = config
            .battery
            .clone()
            .map(|setup| BatteryRuntime::new(setup, n));

        let link_table = match &config.compression {
            CompressionPolicy::PerLink { links, .. } => {
                let mut table: Vec<(u64, ModelCodec)> = links
                    .iter()
                    .map(|l| (link_key(l.src, l.dst), l.codec))
                    .collect();
                table.sort_by_key(|&(k, _)| k);
                table
            }
            _ => Vec::new(),
        };

        Self {
            battery,
            nodes,
            graph,
            mixing,
            params,
            half,
            next,
            ledger: EnergyLedger::new(n),
            round: 0,
            param_count,
            loss_fn: SoftmaxCrossEntropy::new(num_classes),
            last_train_loss: None,
            sender_flags: vec![false; n],
            encode_scratch: vec![Vec::new(); n],
            // pre-sized to the hard bound (a mixing row holds at most n
            // entries): time-varying graphs hit fresh degree maxima mid-
            // campaign, and a growth realloc there would break the pinned
            // zero-allocation round loop
            agg_indices: (0..n).map(|_| Vec::with_capacity(n)).collect(),
            agg_weights: (0..n).map(|_| Vec::with_capacity(n)).collect(),
            mean_scratch: Vec::new(),
            feedback,
            edge_scratch: vec![EdgeScratch::default(); n],
            late_edges: Vec::new(),
            virtual_round_end: None,
            corrupted_frames: 0,
            round_codecs: vec![Vec::new(); n],
            link_fires: vec![Vec::new(); n],
            charge_fractions: vec![1.0; n],
            link_table,
            loss_scratch: vec![None; n],
            config,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a zero-node simulation (not constructible).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Flat parameter count of the shared architecture.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The communication topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable configuration access (crate-internal: tests tweak energy
    /// accounting mid-run).
    #[cfg(test)]
    pub(crate) fn config_mut(&mut self) -> &mut SimulationConfig {
        &mut self.config
    }

    /// The energy ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Cumulative count of on-time messages the transport corrupted so
    /// far. Every counted frame failed the receive-side checksum verify
    /// and was degraded to a drop (tx charged, no rx, mixing weight folded
    /// back to self).
    pub fn corrupted_frames(&self) -> u64 {
        self.corrupted_frames
    }

    /// The per-link error-feedback state, when feedback is enabled.
    pub fn feedback(&self) -> Option<&ErrorFeedbackState> {
        self.feedback.as_ref()
    }

    /// The per-node battery charge state, when battery gating is
    /// configured.
    pub fn battery_state(&self) -> Option<&BatteryState> {
        self.battery.as_ref().map(|b| &b.state)
    }

    /// The last gated round's participation mask (empty before the first
    /// round), when battery gating is configured.
    pub fn battery_active(&self) -> Option<&[bool]> {
        self.battery.as_ref().map(|b| &b.active[..])
    }

    /// Total node-rounds of participation under battery gating.
    pub fn battery_participations(&self) -> Option<u64> {
        self.battery.as_ref().map(|b| b.participations)
    }

    /// Brown-out events so far: rounds a node entered intending to train
    /// with less charge than its training cost, losing its remaining
    /// charge to the aborted attempt.
    pub fn battery_brownouts(&self) -> Option<u64> {
        self.battery.as_ref().map(|b| b.brownouts)
    }

    /// Current committed model of `node`.
    pub fn node_params(&self, node: usize) -> &[f32] {
        &self.params[node]
    }

    /// Overwrites the committed model of `node` (tests, warm starts).
    pub fn set_node_params(&mut self, node: usize, params: &[f32]) {
        assert_eq!(params.len(), self.param_count, "parameter length mismatch");
        self.params[node].copy_from_slice(params);
    }

    /// Mean training loss over training nodes in the last round.
    pub fn last_train_loss(&self) -> Option<f32> {
        self.last_train_loss
    }

    /// Element-wise mean of all node models.
    pub fn mean_params(&self) -> Vec<f32> {
        let mut mean = Vec::new();
        self.mean_params_into(&mut mean);
        mean
    }

    /// Accumulates the element-wise mean of all node models into `out`
    /// (resized to the parameter count) — the allocation-free form
    /// behind [`Simulation::mean_params`] and the reusable mean buffer of
    /// [`Simulation::evaluate_mean_model`].
    fn mean_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.param_count, 0.0);
        let scale = 1.0 / self.len() as f32;
        for p in &self.params {
            skiptrain_linalg::ops::axpy(scale, p, out);
        }
    }

    /// Mean squared distance of node models to the mean model, normalized by
    /// the parameter count — the consensus-disagreement metric.
    pub fn disagreement(&self) -> f64 {
        let mean = self.mean_params();
        let mut acc = 0.0f64;
        for p in &self.params {
            acc += skiptrain_linalg::ops::squared_distance(p, &mean) as f64;
        }
        acc / (self.len() as f64 * self.param_count as f64)
    }

    /// Executes one synchronous round: local compute per `actions`, then
    /// share + aggregate, then energy accounting.
    ///
    /// # Panics
    /// Panics if `actions.len() != self.len()`; see
    /// [`Simulation::try_run_round`] for the typed-error form.
    pub fn run_round(&mut self, actions: &[RoundAction]) {
        self.try_run_round(actions)
            // lint:allow(no_panic, "documented '# Panics' contract; try_run_round is the typed-error form")
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`Simulation::run_round`]: a mismatched action
    /// slice is an [`EngineError`] instead of a panic.
    pub fn try_run_round(&mut self, actions: &[RoundAction]) -> Result<(), EngineError> {
        self.try_run_round_inner(actions, None)
    }

    /// Executes one round aggregating with an externally supplied mixing
    /// matrix instead of the topology's — the hook for time-varying
    /// topologies and asynchronous pairwise gossip (§5.3 of the paper).
    ///
    /// # Panics
    /// Panics if `actions.len() != self.len()` or the matrix size
    /// differs; see [`Simulation::try_run_round_with_mixing`] for the
    /// typed-error form campaign drivers use (one bad scheduled graph
    /// fails one cell, not the process).
    pub fn run_round_with_mixing(&mut self, actions: &[RoundAction], mixing: &MixingMatrix) {
        self.try_run_round_with_mixing(actions, mixing)
            // lint:allow(no_panic, "documented '# Panics' contract; try_run_round_with_mixing is the typed-error form")
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`Simulation::run_round_with_mixing`].
    pub fn try_run_round_with_mixing(
        &mut self,
        actions: &[RoundAction],
        mixing: &MixingMatrix,
    ) -> Result<(), EngineError> {
        if mixing.len() != self.len() {
            return Err(EngineError::MixingSizeMismatch {
                expected: self.len(),
                got: mixing.len(),
            });
        }
        self.try_run_round_inner(actions, Some(mixing))
    }

    /// Executes one round through the discrete-event core: `engine` plays
    /// the round's timeline (churn draws, per-node compute completions,
    /// per-edge arrivals, deadline classification) and this method runs
    /// the data phases over what actually happened.
    ///
    /// When every node is present and no message missed its deadline —
    /// always the case under barrier semantics, and under deadline
    /// semantics at zero latency — the round takes the *identical* code
    /// path as [`Simulation::try_run_round_with_mixing`], so results are
    /// bit-for-bit equal to the lockstep loop; only the ledger's virtual
    /// round-end stamps differ. Otherwise absent nodes are demoted to
    /// [`RoundAction::SyncOnly`] with their mixing rows masked to
    /// identity (zero tx/rx, training skipped — ledger conservation is
    /// exact through churn), and late edges are treated as drops.
    ///
    /// Battery gating composes: the presence mask is applied first, then
    /// the battery's participation mask on top.
    pub fn try_run_round_event(
        &mut self,
        actions: &[RoundAction],
        mixing_override: Option<&MixingMatrix>,
        engine: &mut crate::events::EventEngine,
    ) -> Result<(), EngineError> {
        if engine.len() != self.len() {
            return Err(EngineError::EventEngineSizeMismatch {
                expected: self.len(),
                got: engine.len(),
            });
        }
        if actions.len() != self.len() {
            return Err(EngineError::ActionArityMismatch {
                expected: self.len(),
                got: actions.len(),
            });
        }
        if let Some(m) = mixing_override {
            if m.len() != self.len() {
                return Err(EngineError::MixingSizeMismatch {
                    expected: self.len(),
                    got: m.len(),
                });
            }
        }
        let mixing = mixing_override.unwrap_or(&self.mixing);
        engine.begin_round(self.round, actions, mixing);
        self.virtual_round_end = Some(engine.now());
        let result = if engine.all_present() && engine.late_edges().is_empty() {
            self.try_run_round_inner(actions, mixing_override)
        } else {
            engine.compose_gating(actions, mixing);
            self.late_edges.clear();
            self.late_edges.extend_from_slice(engine.late_edges());
            let result = self.try_run_round_inner(&engine.gated, Some(&engine.masked));
            self.late_edges.clear();
            result
        };
        self.virtual_round_end = None;
        result
    }

    fn try_run_round_inner(
        &mut self,
        actions: &[RoundAction],
        mixing_override: Option<&MixingMatrix>,
    ) -> Result<(), EngineError> {
        if actions.len() != self.len() {
            return Err(EngineError::ActionArityMismatch {
                expected: self.len(),
                got: actions.len(),
            });
        }
        if self.battery.is_none() {
            return self.run_round_phases(actions, mixing_override);
        }

        // Battery gating, factored once for every execution path (static
        // runner, scheduled topologies, async gossip — they all land
        // here): recharge → decide → brown-out → run the round over the
        // gated actions and the participation-masked effective mixing →
        // drain each node's actual ledger spend. The runtime is taken out
        // of `self` so its buffers can be borrowed across the `&mut self`
        // phase call; the mask flows through the same `mixing_override`
        // slot schedules use, which is what keeps comm energy byte-
        // accurate and error-feedback replicas advancing only on edges
        // that really fired.
        // lint:allow(no_panic, "provably infallible: this branch is only entered when battery.is_some() was checked above")
        let mut battery = self.battery.take().expect("battery gating checked above");
        battery.begin_round(
            self.round,
            actions,
            mixing_override.unwrap_or(&self.mixing),
            &self.config.training_energy_wh,
        );
        // Snapshot post-recharge charge fractions for energy-adaptive
        // codec resolution: the sender's level *at send time*, before the
        // round's own spend drains it.
        if !self.config.compression.is_uniform() {
            for (i, frac) in self.charge_fractions.iter_mut().enumerate() {
                *frac = battery.state.charge_fraction(i);
            }
        }
        let result = self.run_round_phases(&battery.actions, Some(&battery.masked));
        if result.is_ok() {
            battery.settle(&self.ledger);
        }
        self.battery = Some(battery);
        result
    }

    /// The four round phases (local compute, share, aggregate, energy
    /// accounting) over an already-gated action slice and effective
    /// mixing.
    fn run_round_phases(
        &mut self,
        actions: &[RoundAction],
        mixing_override: Option<&MixingMatrix>,
    ) -> Result<(), EngineError> {
        debug_assert_eq!(actions.len(), self.len());
        let local_steps = self.config.local_steps;

        // Phase 1: local compute (parallel over nodes), writing each
        // node's local loss into a reusable slot — no per-round
        // collection.
        let params = &self.params;
        self.nodes
            .par_iter_mut()
            .zip(self.half.par_iter_mut())
            .zip(self.loss_scratch.par_iter_mut())
            .zip(params.par_iter())
            .zip(actions.par_iter())
            .for_each(
                |((((node, half_i), loss_i), params_i), action)| match action {
                    RoundAction::Train => {
                        *loss_i = Some(node.train_local(params_i, local_steps, half_i));
                    }
                    RoundAction::SyncOnly => {
                        half_i.clear();
                        half_i.extend_from_slice(params_i);
                        *loss_i = None;
                    }
                },
            );
        let (loss_sum, trained) = self
            .loss_scratch
            .iter()
            .flatten()
            .fold((0.0f32, 0u32), |(s, c), &l| (s + l, c + 1));
        self.last_train_loss = (trained > 0).then(|| loss_sum / trained as f32);

        // The effective mixing for this round decides who talks to whom:
        // a pairwise-matching override replaces the static topology for
        // both aggregation *and* energy accounting.
        let mixing = mixing_override.unwrap_or(&self.mixing);
        let n = self.len();

        // Adaptive (non-uniform) compression policies resolve a codec per
        // directed link per round, then share/aggregate per edge — the
        // per-link payloads make a shared per-sender share phase
        // impossible. The uniform path below is untouched (bit-identical
        // to the pre-policy executor).
        let Some(codec) = self.config.compression.uniform() else {
            self.resolve_link_codecs(mixing_override);
            if self.feedback.is_some() {
                self.share_aggregate_with_feedback(mixing_override, None);
            } else {
                self.share_aggregate_per_link(mixing_override);
            }
            self.apply_consensus_gamma();
            std::mem::swap(&mut self.params, &mut self.next);
            self.account_energy(actions, mixing_override);
            self.round += 1;
            return Ok(());
        };

        // Effective senders: nodes appearing off-diagonal in any row.
        // Computed into a reusable bitmap, and only on the paths that
        // materialize payloads — the Memory + DenseF32 fast path never
        // reads it, and the error-feedback path compresses per directed
        // edge instead of per sender.
        let feedback_on = codec != ModelCodec::DenseF32 && self.feedback.is_some();
        let needs_sender_flags = !feedback_on
            && (!matches!(self.config.transport, TransportKind::Memory)
                || codec != ModelCodec::DenseF32);
        if needs_sender_flags {
            let flags = &mut self.sender_flags;
            flags.fill(false);
            for i in 0..n {
                for &(j, _) in mixing.row(i) {
                    if j as usize != i {
                        flags[j as usize] = true;
                    }
                }
            }
        }

        if feedback_on {
            self.share_aggregate_with_feedback(mixing_override, Some(codec));
            self.apply_consensus_gamma();
            std::mem::swap(&mut self.params, &mut self.next);
            self.account_energy(actions, mixing_override);
            self.round += 1;
            return Ok(());
        }

        // Phase 2: share. The serialized transport actually encodes/decodes
        // every sender's model (into per-node reusable frame buffers) and
        // may drop messages; the in-memory transport reads half-step models
        // directly (applying the codec's lossy transform when one is
        // configured — bit-identical to the wire round trip).
        let shared: Shared = match (self.config.transport, codec) {
            (TransportKind::Memory, ModelCodec::DenseF32) => Shared::Direct,
            (TransportKind::Memory, _) => {
                let is_sender = &self.sender_flags;
                pack_payloads(
                    codec,
                    self.half
                        .par_iter()
                        .enumerate()
                        .map(|(j, model)| is_sender[j].then(|| codec.transform(model)))
                        .collect(),
                )
            }
            (TransportKind::Serialized { .. }, _) => {
                let is_sender = &self.sender_flags;
                let round = self.round as u32;
                pack_payloads(
                    codec,
                    self.half
                        .par_iter()
                        .zip(self.encode_scratch.par_iter_mut())
                        .enumerate()
                        .map(|(j, (model, frame))| {
                            is_sender[j].then(|| {
                                encode_message_into(codec, j as u32, round, model, frame);
                                decode_frame(frame)
                                    // lint:allow(no_panic, "frame was written by encode_message_into on the line above; a fresh in-process frame always decodes")
                                    .expect("in-process frame must decode")
                                    .payload
                            })
                        })
                        .collect(),
                )
            }
        };

        // Phase 3: aggregate x^t = Σ_j W_ji x_j^{t−½} (parallel over nodes),
        // renormalizing dropped neighbors into the self weight. Sparse
        // (top-k) messages use masked aggregation: coordinates the sender
        // did not transmit fall back to the receiver's own value, so the
        // row stays stochastic per coordinate. The dense paths aggregate
        // through per-node reusable (index, weight) scratch and the
        // indexed weighted-sum kernel — no allocation per node per round.
        let half = &self.half;
        let transport = self.config.transport;
        let seed = self.config.seed;
        let round = self.round;
        let late = &self.late_edges;
        self.next
            .par_iter_mut()
            .zip(self.agg_indices.par_iter_mut())
            .zip(self.agg_weights.par_iter_mut())
            .enumerate()
            .for_each(|(i, ((out, indices), weights))| {
                let row = mixing.row(i);
                match &shared {
                    Shared::Sparse(msgs) => {
                        let base: &[f32] = &half[i];
                        let row_sum: f32 = row.iter().map(|&(_, w)| w).sum();
                        skiptrain_linalg::ops::scaled_copy(row_sum, base, out);
                        for &(j, w) in row {
                            let j = j as usize;
                            if j != i
                                && transport.delivered(seed, round, j, i)
                                && edge_on_time(late, j, i)
                            {
                                let (indices, values) = &msgs[j];
                                sparse_blend_axpy(out, base, indices, values, w);
                            }
                            // dropped neighbor weight is already on `base`
                        }
                    }
                    dense => {
                        let fetch = |j: u32| -> &[f32] {
                            let j = j as usize;
                            if j == i {
                                return &half[i];
                            }
                            match dense {
                                Shared::Direct => &half[j],
                                Shared::Dense(models) => &models[j],
                                // lint:allow(no_panic, "the sparse case returned from this closure earlier")
                                Shared::Sparse(_) => unreachable!("sparse handled above"),
                            }
                        };
                        indices.clear();
                        weights.clear();
                        let mut dropped_weight = 0.0f32;
                        let mut self_pos = usize::MAX;
                        for &(j, w) in row {
                            if j as usize == i {
                                self_pos = indices.len();
                                indices.push(j);
                                weights.push(w);
                            } else if transport.delivered(seed, round, j as usize, i)
                                && edge_on_time(late, j as usize, i)
                            {
                                indices.push(j);
                                weights.push(w);
                            } else {
                                dropped_weight += w;
                            }
                        }
                        // Fold dropped-neighbor weight back into the self
                        // weight; a row carrying no explicit self entry gets
                        // one appended instead of indexing out of bounds.
                        if self_pos != usize::MAX {
                            weights[self_pos] += dropped_weight;
                        } else if dropped_weight > 0.0 {
                            indices.push(i as u32);
                            weights.push(dropped_weight);
                        }
                        skiptrain_linalg::ops::weighted_sum_indexed_into(
                            out, indices, weights, fetch,
                        );
                    }
                }
            });
        self.apply_consensus_gamma();
        std::mem::swap(&mut self.params, &mut self.next);

        // Phase 4: energy accounting over the edges that actually fired.
        self.account_energy(actions, mixing_override);
        self.round += 1;
        Ok(())
    }

    /// Resolves this round's per-link codec table for the active adaptive
    /// policy: one entry per mixing-row position per receiver, aligned so
    /// the share phase and the energy accounting read the *same* codec
    /// for every directed edge (diagonal positions hold a never-read
    /// placeholder). Also advances the rarity fire counters — counts bump
    /// *before* resolution, so an always-on link resolves `base_k` and a
    /// first-contact link on round `r` gets the full `r`× boost.
    fn resolve_link_codecs(&mut self, mixing_override: Option<&MixingMatrix>) {
        let mixing = mixing_override.unwrap_or(&self.mixing);
        let round_codecs = &mut self.round_codecs;
        let link_fires = &mut self.link_fires;
        let charge = &self.charge_fractions;
        let link_table = &self.link_table;
        let elapsed = self.round as u64 + 1;
        for i in 0..mixing.len() {
            let row = mixing.row(i);
            let out = &mut round_codecs[i];
            out.clear();
            match &self.config.compression {
                CompressionPolicy::Uniform(c) => {
                    // Reachable only if a caller resolves eagerly; the
                    // round loop short-circuits uniform policies.
                    out.extend(row.iter().map(|_| *c));
                }
                CompressionPolicy::PerLink { default, .. } => {
                    out.extend(row.iter().map(|&(j, _)| {
                        if j as usize == i {
                            return ModelCodec::DenseF32;
                        }
                        match link_table
                            .binary_search_by_key(&link_key(j, i as u32), |&(key, _)| key)
                        {
                            Ok(pos) => link_table[pos].1,
                            Err(_) => *default,
                        }
                    }));
                }
                CompressionPolicy::RarityAdaptive { base_k, max_k } => {
                    let fires = &mut link_fires[i];
                    out.extend(row.iter().map(|&(j, _)| {
                        if j as usize == i {
                            return ModelCodec::DenseF32;
                        }
                        let f = match fires.binary_search_by_key(&j, |&(s, _)| s) {
                            Ok(pos) => {
                                fires[pos].1 += 1;
                                fires[pos].1
                            }
                            Err(pos) => {
                                fires.insert(pos, (j, 1));
                                1
                            }
                        };
                        ModelCodec::TopK {
                            k: rarity_k(*base_k, *max_k, elapsed, f),
                        }
                    }));
                }
                CompressionPolicy::EnergyAdaptive { tiers } => {
                    out.extend(row.iter().map(|&(j, _)| {
                        if j as usize == i {
                            return ModelCodec::DenseF32;
                        }
                        tier_codec(tiers, charge[j as usize])
                    }));
                }
            }
        }
    }

    /// Applies the consensus stepsize after aggregation, in place on the
    /// `next` buffers: `x^t = x^{t−½} + γ (x_mixed − x^{t−½})`. γ = 1
    /// (the default) skips entirely, keeping the plain mixing update
    /// bit-identical to the pre-γ executor.
    fn apply_consensus_gamma(&mut self) {
        let gamma = self.config.consensus_gamma;
        if gamma == 1.0 {
            return;
        }
        let half = &self.half;
        self.next
            .par_iter_mut()
            .zip(half.par_iter())
            .for_each(|(out, base)| {
                for (o, &b) in out.iter_mut().zip(base.iter()) {
                    *o = b + gamma * (*o - b);
                }
            });
    }

    /// Share + aggregate for adaptive (non-uniform) compression policies
    /// without error feedback: receiver-parallel, compressing each
    /// delivered directed edge separately with the codec
    /// [`Simulation::resolve_link_codecs`] picked for it this round. A
    /// top-k edge's untransmitted coordinates and every dropped, late, or
    /// corrupted edge fall back onto the receiver's own half-step model,
    /// exactly like the uniform paths. The serialized transport runs a
    /// genuine per-edge encode/decode round trip; the in-memory transport
    /// uses the equivalent kernels through per-receiver reusable buffers
    /// (allocation-free at steady state).
    fn share_aggregate_per_link(&mut self, mixing_override: Option<&MixingMatrix>) {
        let mixing = mixing_override.unwrap_or(&self.mixing);
        let half = &self.half;
        let round_codecs = &self.round_codecs;
        let transport = self.config.transport;
        let seed = self.config.seed;
        let round = self.round;
        let round_u32 = self.round as u32;
        let late = &self.late_edges;
        self.next
            .par_iter_mut()
            .zip(self.edge_scratch.par_iter_mut())
            .enumerate()
            .for_each(|(i, (out, scratch))| {
                let row = mixing.row(i);
                out.fill(0.0);
                // Self weight plus every fallback weight lands on the
                // receiver's own model, applied last in a fixed order for
                // determinism across thread counts.
                let mut self_weight = 0.0f32;
                for (pos, &(j, w)) in row.iter().enumerate() {
                    let src = j as usize;
                    if src == i {
                        self_weight += w;
                        continue;
                    }
                    let codec = round_codecs[i][pos];
                    let fate = transport.fate(seed, round, src, i);
                    let on_time = edge_on_time(late, src, i);
                    if fate != MessageFate::Delivered || !on_time {
                        // Same degradation contract as every other path:
                        // weight folds to self; a corrupted frame proves
                        // the receive-side checksum reject first. (The
                        // counter lives in `account_energy`.)
                        if fate == MessageFate::Corrupted && on_time {
                            encode_message_into(
                                codec,
                                j,
                                round_u32,
                                &half[src],
                                &mut scratch.frame,
                            );
                            corrupt_frame_in_place(&mut scratch.frame, seed, round, src, i);
                            let rejected = decode_frame(&scratch.frame).is_err();
                            debug_assert!(
                                rejected,
                                "corrupted frame must fail the checksum verify"
                            );
                        }
                        self_weight += w;
                        continue;
                    }
                    match transport {
                        TransportKind::Memory => match codec {
                            ModelCodec::DenseF32 => {
                                skiptrain_linalg::ops::axpy(w, &half[src], out);
                            }
                            ModelCodec::QuantizedU8 => {
                                let p = quantize_u8_into(&half[src], &mut scratch.codes8);
                                dequantize_u8(p, &scratch.codes8, &mut scratch.recon);
                                skiptrain_linalg::ops::axpy(w, &scratch.recon, out);
                            }
                            ModelCodec::QuantizedU16 => {
                                let p = quantize_u16_into(&half[src], &mut scratch.codes16);
                                dequantize_u16(p, &scratch.codes16, &mut scratch.recon);
                                skiptrain_linalg::ops::axpy(w, &scratch.recon, out);
                            }
                            ModelCodec::TopK { k } => {
                                top_k_indices_into(&half[src], k, &mut scratch.indices);
                                gather_into(&half[src], &scratch.indices, &mut scratch.values);
                                sparse_blend_axpy(
                                    out,
                                    &half[i],
                                    &scratch.indices,
                                    &scratch.values,
                                    w,
                                );
                                self_weight += w;
                            }
                        },
                        TransportKind::Serialized { .. } => {
                            // The wire carries this link's codec id in its
                            // frame header, so heterogeneous links decode
                            // without out-of-band coordination.
                            encode_message_into(
                                codec,
                                j,
                                round_u32,
                                &half[src],
                                &mut scratch.frame,
                            );
                            let msg =
                                // lint:allow(no_panic, "frame was written by encode_message_into on the line above; a fresh in-process frame always decodes")
                                decode_frame(&scratch.frame).expect("in-process frame decodes");
                            match msg.payload {
                                Payload::Dense(recon) => {
                                    skiptrain_linalg::ops::axpy(w, &recon, out);
                                }
                                Payload::Sparse { indices, values } => {
                                    sparse_blend_axpy(out, &half[i], &indices, &values, w);
                                    self_weight += w;
                                }
                            }
                        }
                    }
                }
                skiptrain_linalg::ops::axpy(self_weight, &half[i], out);
            });
    }

    /// Fused share + aggregate for error-feedback compression.
    ///
    /// The per-link replicas make every directed edge's payload unique,
    /// so this path compresses per edge `j → i` instead of per sender:
    /// the receiver-parallel loop walks each node's mixing row and, for
    /// every delivering in-edge, compresses the link residual
    /// `x_j^{t−½} − x̂_{j→i}` (via the in-memory kernels, or a genuine
    /// encode/decode round trip on the serialized transport —
    /// bit-identical by the codec contract), folds the payload back into
    /// the replica, and aggregates the *replica* in place of the raw
    /// neighbor model. A replica's first delivery seeds it with the
    /// receiver's own pre-mixing model, so never-delivered coordinates
    /// fall back to the receiver's values exactly like the plain masked
    /// blend — and to the link's last-delivered estimate afterwards.
    ///
    /// The simulation models an *acknowledged* link: a dropped message
    /// leaves the replica untouched (the sender's view only advances on
    /// delivery) and the edge weight falls back onto the receiver's own
    /// model, exactly like the dense drop path. Energy is unaffected —
    /// transmission attempts are charged in phase 4 regardless. Each
    /// link's replica lives in the receiver's slot of
    /// [`ErrorFeedbackState`], so the parallel loop mutates disjoint
    /// state; everything runs through per-receiver reusable buffers
    /// (allocation-free at steady state on the Memory transport).
    fn share_aggregate_with_feedback(
        &mut self,
        mixing_override: Option<&MixingMatrix>,
        uniform: Option<ModelCodec>,
    ) {
        let mixing = mixing_override.unwrap_or(&self.mixing);
        let round_codecs = &self.round_codecs;
        let fb = self
            .feedback
            .as_mut()
            // lint:allow(no_panic, "provably infallible: callers dispatch here only when feedback state is present")
            .expect("feedback path requires state");
        let beta = fb.beta();
        let cap = fb.cap();
        let half = &self.half;
        let transport = self.config.transport;
        let seed = self.config.seed;
        let round = self.round;
        let round_u32 = self.round as u32;
        let late = &self.late_edges;
        self.next
            .par_iter_mut()
            .zip(fb.incoming_mut().par_iter_mut())
            .zip(self.edge_scratch.par_iter_mut())
            .enumerate()
            .for_each(|(i, ((out, links), scratch))| {
                let row = mixing.row(i);
                out.fill(0.0);
                // self weight plus every dropped neighbor's weight falls
                // back onto the receiver's own model, applied last in a
                // fixed order for determinism
                let mut self_weight = 0.0f32;
                for (pos, &(j, w)) in row.iter().enumerate() {
                    let src = j as usize;
                    if src == i {
                        self_weight += w;
                        continue;
                    }
                    // The legacy uniform codec, or this directed link's
                    // resolved codec under an adaptive policy. Replicas
                    // are codec-agnostic, so a link's codec changing
                    // between firings just changes how much of the
                    // residual the next delivery lands.
                    let codec = uniform.unwrap_or_else(|| round_codecs[i][pos]);
                    let fate = transport.fate(seed, round, src, i);
                    let on_time = edge_on_time(late, src, i);
                    if fate != MessageFate::Delivered || !on_time {
                        // Drops, late arrivals, and corrupted frames all
                        // degrade the same way: the replica holds (the
                        // sender's view only advances on acknowledged
                        // delivery) and the edge weight falls back onto the
                        // receiver's own model. A corrupted frame
                        // additionally proves the receive path: encode this
                        // link's payload, flip the seeded bit, and verify
                        // the checksum rejects it before it is discarded.
                        // (The counter lives in `account_energy`, which
                        // walks the same effective edges serially.)
                        if fate == MessageFate::Corrupted && on_time {
                            encode_message_into(
                                codec,
                                j,
                                round_u32,
                                &half[src],
                                &mut scratch.frame,
                            );
                            corrupt_frame_in_place(&mut scratch.frame, seed, round, src, i);
                            let rejected = decode_frame(&scratch.frame).is_err();
                            debug_assert!(
                                rejected,
                                "corrupted frame must fail the checksum verify"
                            );
                        }
                        self_weight += w;
                        continue;
                    }
                    // Get-or-insert under the replica cap: a cold link
                    // (first contact, or re-established after a staleness
                    // eviction) seeds from the receiver's own pre-mixing
                    // model, so untransmitted coordinates fall back to the
                    // receiver's values exactly like the plain masked blend.
                    let replica = links.replica_mut(j, round as u64, cap, |buf| {
                        buf.clear();
                        buf.extend_from_slice(&half[i]);
                    });
                    if matches!(transport, TransportKind::Memory) {
                        match codec {
                            ModelCodec::TopK { k } => compress_with_feedback_top_k(
                                &half[src],
                                replica,
                                beta,
                                k,
                                &mut scratch.fb,
                                &mut scratch.indices,
                                &mut scratch.values,
                            ),
                            ModelCodec::QuantizedU8 => {
                                compress_with_feedback_u8(
                                    &half[src],
                                    replica,
                                    beta,
                                    &mut scratch.fb,
                                    &mut scratch.codes8,
                                    &mut scratch.recon,
                                );
                            }
                            ModelCodec::QuantizedU16 => {
                                compress_with_feedback_u16(
                                    &half[src],
                                    replica,
                                    beta,
                                    &mut scratch.fb,
                                    &mut scratch.codes16,
                                    &mut scratch.recon,
                                );
                            }
                            ModelCodec::DenseF32 => {
                                // A dense firing lands the replica exactly
                                // on the sender's model (β-damped): the
                                // residual is delivered whole.
                                accumulate_delta(&half[src], replica, &mut scratch.fb.delta);
                                skiptrain_linalg::ops::axpy(beta, &scratch.fb.delta, replica);
                            }
                        }
                    } else {
                        // the wire carries the compressed *delta* under the
                        // unchanged frame layout; both ends advance the
                        // replica from the decoded payload
                        accumulate_delta(&half[src], replica, &mut scratch.fb.delta);
                        encode_message_into(
                            codec,
                            j,
                            round_u32,
                            &scratch.fb.delta,
                            &mut scratch.frame,
                        );
                        // lint:allow(no_panic, "frame was written by encode_message_into on the line above; a fresh in-process frame always decodes")
                        let msg = decode_frame(&scratch.frame).expect("in-process frame decodes");
                        match msg.payload {
                            Payload::Sparse { indices, values } => {
                                scatter_axpy(replica, &indices, &values, beta);
                            }
                            Payload::Dense(recon) => {
                                skiptrain_linalg::ops::axpy(beta, &recon, replica);
                            }
                        }
                    }
                    skiptrain_linalg::ops::axpy(w, replica, out);
                }
                skiptrain_linalg::ops::axpy(self_weight, &half[i], out);
            });
    }

    /// Records this round's energy from per-message events.
    ///
    /// Communication derives from the *effective* edge set — every
    /// off-diagonal entry of the mixing rows actually used this round (the
    /// pairwise override when one was supplied, the static topology
    /// otherwise). Each directed edge `j → i` charges the sender one
    /// transmit event (attempts cost radio energy even when the network
    /// drops the message) and, when delivered, charges the receiver one
    /// receive event. Message bytes come from the wire format of the
    /// codec the compression policy resolved for that directed link this
    /// round — a single quote under [`CompressionPolicy::Uniform`], the
    /// round's `round_codecs` table otherwise — at the nominal parameter
    /// count (top-k scales its kept fraction to the nominal model — see
    /// [`ModelCodec::charged_message_bytes`]).
    fn account_energy(&mut self, actions: &[RoundAction], mixing_override: Option<&MixingMatrix>) {
        let nominal = self.config.nominal_params.unwrap_or(self.param_count);
        let uniform_bytes = self
            .config
            .compression
            .uniform()
            .map(|codec| codec.charged_message_bytes(self.param_count, nominal));
        let comm = self.config.comm_energy;
        for (i, action) in actions.iter().enumerate() {
            if *action == RoundAction::Train {
                if let Some(&e) = self.config.training_energy_wh.get(i) {
                    self.ledger.record_training(i, e);
                }
            }
        }
        let mixing = mixing_override.unwrap_or(&self.mixing);
        let seed = self.config.seed;
        for i in 0..mixing.len() {
            for (pos, &(j, _)) in mixing.row(i).iter().enumerate() {
                let j = j as usize;
                if j == i {
                    continue;
                }
                let msg_bytes = match uniform_bytes {
                    Some(bytes) => bytes,
                    None => {
                        self.round_codecs[i][pos].charged_message_bytes(self.param_count, nominal)
                    }
                };
                self.ledger.record_tx(j, msg_bytes, &comm);
                let on_time = edge_on_time(&self.late_edges, j, i);
                match self.config.transport.fate(seed, self.round, j, i) {
                    MessageFate::Delivered if on_time => {
                        self.ledger.record_rx(i, msg_bytes, &comm);
                    }
                    MessageFate::Corrupted if on_time => {
                        // The frame arrived mangled: count it, and when the
                        // plain serialized share phase left this sender's
                        // real wire bytes in scratch, run them through the
                        // receive-side checksum verify to prove the reject
                        // path. XOR is self-inverse, so flipping the seeded
                        // bit twice restores the shared frame in place —
                        // no copy, no allocation.
                        self.corrupted_frames += 1;
                        let frame = &mut self.encode_scratch[j];
                        if !frame.is_empty() {
                            corrupt_frame_in_place(frame, seed, self.round, j, i);
                            let rejected = decode_frame(frame).is_err();
                            corrupt_frame_in_place(frame, seed, self.round, j, i);
                            debug_assert!(
                                rejected,
                                "corrupted frame must fail the checksum verify"
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        match self.virtual_round_end {
            Some(ticks) => self.ledger.end_round_at(ticks),
            None => self.ledger.end_round(),
        }
    }

    /// Evaluates every node's model on (a fixed subsample of) `dataset`,
    /// in parallel. `max_samples = usize::MAX` evaluates the full set.
    pub fn evaluate(&mut self, dataset: &Dataset, max_samples: usize) -> EvalStats {
        let indices = fixed_subsample(dataset.len(), max_samples, self.config.seed);
        let loss_fn = &self.loss_fn;
        let params = &self.params;
        let results: Vec<(f32, f32)> = self
            .nodes
            .par_iter_mut()
            .zip(params.par_iter())
            .map(|(node, p)| {
                node.model_mut().load_params(p);
                evaluate_model(node.model_mut(), loss_fn, dataset, Some(&indices))
            })
            .collect();
        EvalStats::from_node_results(self.round, &results)
    }

    /// Evaluates the *average* of all node models (the Figure-1 all-reduce
    /// curve evaluates this quantity).
    ///
    /// The forward pass is parallelized the same way [`Simulation::evaluate`]
    /// is: the evaluation subsample is split into [`EVAL_CHUNK`]-sized
    /// spans, each loaded onto a different node's model replica (all
    /// replicas get the same mean parameters) and evaluated concurrently.
    /// The mean itself is accumulated into a reusable buffer rather than a
    /// fresh allocation per call.
    pub fn evaluate_mean_model(&mut self, dataset: &Dataset, max_samples: usize) -> (f32, f32) {
        let indices = fixed_subsample(dataset.len(), max_samples, self.config.seed);
        if indices.is_empty() {
            return (0.0, 0.0);
        }
        let mut mean_scratch = std::mem::take(&mut self.mean_scratch);
        self.mean_params_into(&mut mean_scratch);
        self.mean_scratch = mean_scratch;

        // One contiguous index span per participating replica; chunks are
        // at least EVAL_CHUNK samples so small evaluations stay on one
        // replica (one load_params) like before.
        let chunk = EVAL_CHUNK.max(indices.len().div_ceil(self.nodes.len()));
        let spans: Vec<(usize, usize)> = (0..indices.len())
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(indices.len())))
            .collect();
        let mean = &self.mean_scratch;
        let loss_fn = &self.loss_fn;
        let indices = &indices;
        let results: Vec<(f32, f32, usize)> = self.nodes[..spans.len()]
            .par_iter_mut()
            .zip(spans.par_iter())
            .map(|(node, &(s, e))| {
                node.model_mut().load_params(mean);
                let (acc, loss) =
                    evaluate_model(node.model_mut(), loss_fn, dataset, Some(&indices[s..e]));
                (acc, loss, e - s)
            })
            .collect();

        // Recombine the per-span (accuracy, loss) pairs exactly the way
        // evaluate_model combines its internal chunks: by sample counts.
        let total = indices.len() as f64;
        let mut correct = 0.0f64;
        let mut loss_sum = 0.0f64;
        for (acc, loss, len) in results {
            correct += (acc as f64 * len as f64).round();
            loss_sum += loss as f64 * len as f64;
        }
        ((correct / total) as f32, (loss_sum / total) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiptrain_data::synth::{MixtureSpec, MixtureTask};
    use skiptrain_topology::regular::random_regular;

    fn tiny_sim_full(
        n: usize,
        seed: u64,
        transport: TransportKind,
        codec: ModelCodec,
        degree: usize,
    ) -> (Simulation, Dataset) {
        let spec = MixtureSpec {
            num_classes: 4,
            feature_dim: 6,
            modes_per_class: 1,
            separation: 1.6,
            noise: 0.5,
        };
        let task = MixtureTask::new(spec, 99);
        let datasets: Vec<Dataset> = (0..n).map(|i| task.sample(60, 10 + i as u64)).collect();
        let test = task.sample(200, 5000);
        let models: Vec<Sequential> = (0..n)
            .map(|i| skiptrain_nn::zoo::mlp(&[6, 12, 4], seed + i as u64))
            .collect();
        let graph = random_regular(n, degree, seed);
        let mixing = MixingMatrix::metropolis_hastings(&graph);
        let mut config = SimulationConfig::minimal(seed, 8, 2, 0.1);
        config.transport = transport;
        config.compression = CompressionPolicy::Uniform(codec);
        (
            Simulation::new(models, datasets, graph, mixing, config),
            test,
        )
    }

    fn tiny_sim(n: usize, seed: u64, transport: TransportKind) -> (Simulation, Dataset) {
        let d = if n > 4 { 4 } else { n - 1 };
        tiny_sim_full(n, seed, transport, ModelCodec::DenseF32, d)
    }

    fn tiny_sim_feedback(
        n: usize,
        seed: u64,
        transport: TransportKind,
        codec: ModelCodec,
        degree: usize,
        beta: f32,
    ) -> Simulation {
        let (mut sim, _) = tiny_sim_full(n, seed, transport, codec, degree);
        sim.config.feedback_beta = Some(beta);
        // mirror the constructor's unset-cap default: adaptive to the graph
        let cap = sim
            .graph()
            .degree_range()
            .1
            .max(crate::transport::DEFAULT_REPLICA_CAP);
        sim.feedback = Some(ErrorFeedbackState::with_cap(n, beta, cap));
        sim
    }

    #[test]
    fn training_rounds_improve_accuracy() {
        let (mut sim, test) = tiny_sim(8, 1, TransportKind::Memory);
        let before = sim.evaluate(&test, usize::MAX);
        let actions = vec![RoundAction::Train; 8];
        for _ in 0..25 {
            sim.run_round(&actions);
        }
        let after = sim.evaluate(&test, usize::MAX);
        assert!(
            after.mean_accuracy > before.mean_accuracy + 0.2,
            "accuracy {} -> {} did not improve enough",
            before.mean_accuracy,
            after.mean_accuracy
        );
    }

    #[test]
    fn sync_rounds_reduce_disagreement_without_changing_mean() {
        let (mut sim, _) = tiny_sim(8, 2, TransportKind::Memory);
        // diversify models with a few training rounds
        for _ in 0..3 {
            sim.run_round(&[RoundAction::Train; 8]);
        }
        let mean_before = sim.mean_params();
        let d_before = sim.disagreement();
        for _ in 0..10 {
            sim.run_round(&[RoundAction::SyncOnly; 8]);
        }
        let d_after = sim.disagreement();
        let mean_after = sim.mean_params();
        assert!(
            d_after < d_before * 0.5,
            "disagreement {d_before} -> {d_after}"
        );
        // doubly stochastic mixing preserves the average model
        let drift: f32 = mean_before
            .iter()
            .zip(&mean_after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(
            drift < 1e-4,
            "sync rounds drifted the mean model by {drift}"
        );
    }

    #[test]
    fn serialized_transport_matches_memory_exactly() {
        let (mut mem, test) = tiny_sim(6, 3, TransportKind::Memory);
        let (mut ser, _) = tiny_sim(
            6,
            3,
            TransportKind::Serialized {
                drop_prob: 0.0,
                corrupt_prob: 0.0,
            },
        );
        let actions = vec![RoundAction::Train; 6];
        for _ in 0..5 {
            mem.run_round(&actions);
            ser.run_round(&actions);
        }
        for i in 0..6 {
            assert_eq!(
                mem.node_params(i),
                ser.node_params(i),
                "node {i} diverged between transports"
            );
        }
        let (am, _) = mem.evaluate_mean_model(&test, usize::MAX);
        let (as_, _) = ser.evaluate_mean_model(&test, usize::MAX);
        assert_eq!(am, as_);
    }

    #[test]
    fn lossy_transport_still_converges_models() {
        let (mut sim, _) = tiny_sim(
            8,
            4,
            TransportKind::Serialized {
                drop_prob: 0.3,
                corrupt_prob: 0.0,
            },
        );
        for _ in 0..3 {
            sim.run_round(&[RoundAction::Train; 8]);
        }
        let d_before = sim.disagreement();
        for _ in 0..15 {
            sim.run_round(&[RoundAction::SyncOnly; 8]);
        }
        assert!(
            sim.disagreement() < d_before * 0.5,
            "lossy sync should still contract disagreement"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let (mut sim, test) = tiny_sim(6, 7, TransportKind::Memory);
            for r in 0..6 {
                let actions: Vec<RoundAction> = (0..6)
                    .map(|i| {
                        if (r + i) % 2 == 0 {
                            RoundAction::Train
                        } else {
                            RoundAction::SyncOnly
                        }
                    })
                    .collect();
                sim.run_round(&actions);
            }
            (
                sim.node_params(3).to_vec(),
                sim.evaluate(&test, 100).mean_accuracy,
            )
        };
        let (p1, a1) = run();
        let (p2, a2) = run();
        assert_eq!(p1, p2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn energy_accounting_matches_hand_computation() {
        let (mut sim, _) = tiny_sim(4, 8, TransportKind::Memory);
        sim.config.training_energy_wh = vec![2.0, 3.0, 5.0, 7.0];
        let mut actions = vec![RoundAction::Train; 4];
        actions[3] = RoundAction::SyncOnly;
        sim.run_round(&actions);
        // nodes 0..3 trained: 2 + 3 + 5 Wh
        assert!((sim.ledger().total_training_wh() - 10.0).abs() < 1e-9);
        // comm energy: every node tx+rx over its degree
        let msg = ModelCodec::DenseF32.message_bytes(sim.param_count());
        let expected_comm: f64 = (0..4)
            .map(|i| {
                let d = sim.graph().degree(i) as f64;
                sim.config.comm_energy.tx_energy_wh(msg) * d
                    + sim.config.comm_energy.rx_energy_wh(msg) * d
            })
            .sum();
        assert!((sim.ledger().total_comm_wh() - expected_comm).abs() < 1e-12);
        assert_eq!(sim.ledger().rounds(), 1);
        // byte counters agree with the analytic edge count
        assert_eq!(sim.ledger().total_tx_bytes(), 4 * 3 * msg);
        assert_eq!(sim.ledger().total_rx_bytes(), 4 * 3 * msg);
    }

    #[test]
    fn pairwise_mixing_charges_only_matched_pair() {
        // Regression for the async-gossip over-charging bug: a round run
        // with a 1-pair mixing override on a 6-regular graph must charge
        // exactly 2 messages (one each way), not n·6.
        let n = 12;
        let (mut sim, _) = tiny_sim_full(n, 11, TransportKind::Memory, ModelCodec::DenseF32, 6);
        let mixing = MixingMatrix::pairwise(n, &[(2, 7)]);
        sim.run_round_with_mixing(&vec![RoundAction::SyncOnly; n], &mixing);

        let bytes = ModelCodec::DenseF32.message_bytes(sim.param_count());
        assert_eq!(sim.ledger().total_tx_bytes(), 2 * bytes);
        assert_eq!(sim.ledger().total_rx_bytes(), 2 * bytes);
        assert_eq!(sim.ledger().node_tx_bytes(2), bytes);
        assert_eq!(sim.ledger().node_rx_bytes(2), bytes);
        assert_eq!(sim.ledger().node_tx_bytes(7), bytes);
        assert_eq!(sim.ledger().node_tx_bytes(0), 0);

        let comm = sim.config.comm_energy;
        let expected = 2.0 * (comm.tx_energy_wh(bytes) + comm.rx_energy_wh(bytes));
        assert!((sim.ledger().total_comm_wh() - expected).abs() < 1e-15);
        // the legacy degree formula would have charged 36× more
        let legacy = n as f64 * 6.0 * (comm.tx_energy_wh(bytes) + comm.rx_energy_wh(bytes));
        assert!(sim.ledger().total_comm_wh() < legacy / 30.0);
    }

    #[test]
    fn per_edge_accounting_reproduces_legacy_analytic_totals() {
        // On a static topology the per-edge event stream must reproduce
        // the legacy analytic formula (tx·degree + rx·delivered): exactly,
        // when replayed in event order, and to float tolerance against the
        // closed form.
        let n = 6;
        let rounds = 4;
        let (mut sim, _) = tiny_sim(
            n,
            21,
            TransportKind::Serialized {
                drop_prob: 0.25,
                corrupt_prob: 0.0,
            },
        );
        let actions = vec![RoundAction::Train; n];
        for _ in 0..rounds {
            sim.run_round(&actions);
        }

        let bytes = ModelCodec::DenseF32.message_bytes(sim.param_count());
        let comm = sim.config.comm_energy;
        let transport = sim.config.transport;
        let seed = sim.config.seed;
        let mixing = MixingMatrix::metropolis_hastings(sim.graph());

        // exact replay of the per-edge event stream
        let mut replay = vec![0.0f64; n];
        // legacy closed form, one record per node per round
        let mut legacy = vec![0.0f64; n];
        for r in 0..rounds {
            for i in 0..n {
                for &(j, _) in mixing.row(i) {
                    let j = j as usize;
                    if j == i {
                        continue;
                    }
                    replay[j] += comm.tx_energy_wh(bytes);
                    if transport.delivered(seed, r, j, i) {
                        replay[i] += comm.rx_energy_wh(bytes);
                    }
                }
            }
            for (i, node_legacy) in legacy.iter_mut().enumerate() {
                let degree = sim.graph().degree(i);
                let delivered_in = sim
                    .graph()
                    .neighbors(i)
                    .iter()
                    .filter(|&&j| transport.delivered(seed, r, j as usize, i))
                    .count();
                *node_legacy += comm.tx_energy_wh(bytes) * degree as f64
                    + comm.rx_energy_wh(bytes) * delivered_in as f64;
            }
        }
        for i in 0..n {
            assert_eq!(
                sim.ledger().node_comm_wh(i).to_bits(),
                replay[i].to_bits(),
                "node {i}: event replay must be bit-identical"
            );
            assert!(
                (sim.ledger().node_comm_wh(i) - legacy[i]).abs() < 1e-15,
                "node {i}: {} vs legacy {}",
                sim.ledger().node_comm_wh(i),
                legacy[i]
            );
        }
    }

    #[test]
    fn lossy_mixing_round_counts_delivered_edges() {
        // run_round_with_mixing + lossy Serialized transport: rx charges
        // must match the delivered() decisions over exactly the matched
        // edges, tx charges the attempts.
        let n = 8;
        let (mut sim, _) = tiny_sim_full(
            n,
            17,
            TransportKind::Serialized {
                drop_prob: 0.5,
                corrupt_prob: 0.0,
            },
            ModelCodec::DenseF32,
            4,
        );
        let pairs = [(0u32, 3u32), (1, 6), (2, 5)];
        let mixing = MixingMatrix::pairwise(n, &pairs);
        let rounds = 9;
        for _ in 0..rounds {
            sim.run_round_with_mixing(&vec![RoundAction::SyncOnly; n], &mixing);
        }
        let transport = sim.config.transport;
        let seed = sim.config.seed;
        let bytes = ModelCodec::DenseF32.message_bytes(sim.param_count());
        let mut expected_rx = vec![0u64; n];
        for r in 0..rounds {
            for &(a, b) in &pairs {
                for (src, dst) in [(a as usize, b as usize), (b as usize, a as usize)] {
                    if transport.delivered(seed, r, src, dst) {
                        expected_rx[dst] += bytes;
                    }
                }
            }
        }
        for (i, &rx) in expected_rx.iter().enumerate() {
            let expected_tx = if pairs
                .iter()
                .any(|&(a, b)| a as usize == i || b as usize == i)
            {
                rounds as u64 * bytes
            } else {
                0
            };
            assert_eq!(sim.ledger().node_tx_bytes(i), expected_tx, "tx node {i}");
            assert_eq!(sim.ledger().node_rx_bytes(i), rx, "rx node {i}");
        }
        // with 50% drops, some messages must actually have been dropped
        assert!(sim.ledger().total_rx_bytes() < sim.ledger().total_tx_bytes());
    }

    #[test]
    fn row_without_self_weight_aggregates_gracefully() {
        // A mixing row with no self entry is legal (e.g. a swap matrix):
        // on a lossless transport it must apply exactly, and under drops
        // the dropped weight must fall back to the node's own model
        // instead of panicking (the old code indexed weights[usize::MAX]).
        let swap: MixingMatrix =
            serde_json::from_str(r#"{"n":2,"rows":[[[1,1.0]],[[0,1.0]]]}"#).unwrap();

        let (mut sim, _) = tiny_sim(2, 33, TransportKind::Memory);
        let before0 = sim.node_params(0).to_vec();
        let before1 = sim.node_params(1).to_vec();
        sim.run_round_with_mixing(&[RoundAction::SyncOnly; 2], &swap);
        assert_eq!(sim.node_params(0), &before1[..], "swap row must apply");
        assert_eq!(sim.node_params(1), &before0[..]);

        let (mut lossy, _) = tiny_sim(
            2,
            34,
            TransportKind::Serialized {
                drop_prob: 0.8,
                corrupt_prob: 0.0,
            },
        );
        for _ in 0..12 {
            lossy.run_round_with_mixing(&[RoundAction::SyncOnly; 2], &swap);
        }
        for i in 0..2 {
            assert!(
                lossy.node_params(i).iter().all(|v| v.is_finite()),
                "node {i} produced non-finite parameters"
            );
        }
    }

    #[test]
    fn lossy_codecs_identical_across_transports() {
        // Memory-transport codec transforms must equal the full wire
        // round trip, so large experiments can stay on the fast path.
        for codec in [
            ModelCodec::QuantizedU8,
            ModelCodec::QuantizedU16,
            ModelCodec::TopK { k: 40 },
        ] {
            let (mut mem, _) = tiny_sim_full(6, 31, TransportKind::Memory, codec, 4);
            let (mut ser, _) = tiny_sim_full(
                6,
                31,
                TransportKind::Serialized {
                    drop_prob: 0.0,
                    corrupt_prob: 0.0,
                },
                codec,
                4,
            );
            let actions = vec![RoundAction::Train; 6];
            for _ in 0..3 {
                mem.run_round(&actions);
                ser.run_round(&actions);
            }
            for i in 0..6 {
                assert_eq!(
                    mem.node_params(i),
                    ser.node_params(i),
                    "{codec:?}: node {i} diverged between transports"
                );
            }
        }
    }

    #[test]
    fn top_k_masked_aggregation_blends_against_pre_mixing_model() {
        // Regression (issue 4, satellite 1): when several top-k messages
        // arrive in one round and hit the *same* coordinate, each blend
        // must substitute the receiver's pre-mixing half-step model, not
        // the partially-updated aggregation buffer. Nodes 1 and 2 both
        // send coordinate 1, so a partial-buffer bug would double-apply.
        let (mut sim, _) =
            tiny_sim_full(3, 77, TransportKind::Memory, ModelCodec::TopK { k: 1 }, 2);
        let p = sim.param_count();
        let mut x0 = vec![0.0f32; p];
        x0[0] = 1.0;
        let mut x1 = vec![0.0f32; p];
        x1[1] = 5.0;
        let mut x2 = vec![0.0f32; p];
        x2[1] = 7.0;
        sim.set_node_params(0, &x0);
        sim.set_node_params(1, &x1);
        sim.set_node_params(2, &x2);
        let before = [x0.clone(), x1.clone(), x2.clone()];

        let mixing = MixingMatrix::metropolis_hastings(sim.graph());
        sim.run_round(&[RoundAction::SyncOnly; 3]);

        // independent reimplementation of the masked blend, base fixed to
        // the pre-mixing model for every incoming message
        let sent: Vec<(u32, f32)> = vec![(0, 1.0), (1, 5.0), (1, 7.0)];
        for (i, base) in before.iter().enumerate() {
            let row = mixing.row(i);
            let row_sum: f32 = row.iter().map(|&(_, w)| w).sum();
            let mut expected: Vec<f32> = base.iter().map(|v| v * row_sum).collect();
            for &(j, w) in row {
                if j as usize != i {
                    let (coord, val) = sent[j as usize];
                    let c = coord as usize;
                    expected[c] += w * (val - base[c]);
                }
            }
            assert_eq!(
                sim.node_params(i),
                &expected[..],
                "node {i}: masked blend must use the pre-mixing base"
            );
        }
    }

    #[test]
    fn feedback_codecs_identical_across_transports() {
        for codec in [
            ModelCodec::QuantizedU8,
            ModelCodec::QuantizedU16,
            ModelCodec::TopK { k: 40 },
        ] {
            for beta in [1.0f32, 0.5] {
                let mut mem = tiny_sim_feedback(6, 61, TransportKind::Memory, codec, 4, beta);
                let mut ser = tiny_sim_feedback(
                    6,
                    61,
                    TransportKind::Serialized {
                        drop_prob: 0.0,
                        corrupt_prob: 0.0,
                    },
                    codec,
                    4,
                    beta,
                );
                let actions = vec![RoundAction::Train; 6];
                for _ in 0..3 {
                    mem.run_round(&actions);
                    ser.run_round(&actions);
                }
                for i in 0..6 {
                    assert_eq!(
                        mem.node_params(i),
                        ser.node_params(i),
                        "{codec:?} β={beta}: node {i} diverged between transports"
                    );
                }
                // the sender-local residuals must match too
                for dst in 0..6 {
                    for src in 0..6 {
                        assert_eq!(
                            mem.feedback().unwrap().replica(src, dst),
                            ser.feedback().unwrap().replica(src, dst),
                            "{codec:?} β={beta}: replica {src}->{dst} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn feedback_reduces_top_k_consensus_bias() {
        // Aggressive top-k without memory parks gossip at a biased
        // disagreement floor; error feedback keeps draining the deferred
        // coordinates, so sync rounds contract much further.
        let run = |beta: Option<f32>| {
            let codec = ModelCodec::TopK { k: 8 };
            let mut sim = match beta {
                Some(b) => tiny_sim_feedback(8, 83, TransportKind::Memory, codec, 4, b),
                None => tiny_sim_full(8, 83, TransportKind::Memory, codec, 4).0,
            };
            for _ in 0..3 {
                sim.run_round(&[RoundAction::Train; 8]);
            }
            for _ in 0..20 {
                sim.run_round(&[RoundAction::SyncOnly; 8]);
            }
            sim.disagreement()
        };
        let plain = run(None);
        let with_feedback = run(Some(1.0));
        assert!(
            with_feedback < plain * 0.5,
            "feedback should at least halve the top-k disagreement floor: \
             plain {plain} vs feedback {with_feedback}"
        );
    }

    #[test]
    fn feedback_links_allocate_lazily_per_fired_edge() {
        let n = 8;
        let mut sim = tiny_sim_feedback(
            n,
            91,
            TransportKind::Memory,
            ModelCodec::TopK { k: 10 },
            4,
            1.0,
        );
        assert_eq!(sim.feedback().unwrap().active_links(), 0);
        let mixing = MixingMatrix::pairwise(n, &[(1, 4)]);
        sim.run_round_with_mixing(&vec![RoundAction::SyncOnly; n], &mixing);
        assert_eq!(
            sim.feedback().unwrap().active_links(),
            2,
            "one matched pair fires exactly two directed links"
        );
        assert!(sim.feedback().unwrap().replica(1, 4).is_some());
        assert!(sim.feedback().unwrap().replica(4, 1).is_some());
        assert!(sim.feedback().unwrap().replica(0, 1).is_none());
        // a second, different matching adds exactly two more links and
        // leaves the first pair's residuals in place
        let mixing2 = MixingMatrix::pairwise(n, &[(2, 6)]);
        sim.run_round_with_mixing(&vec![RoundAction::SyncOnly; n], &mixing2);
        assert_eq!(sim.feedback().unwrap().active_links(), 4);
        assert!(sim.feedback().unwrap().replica(1, 4).is_some());
    }

    #[test]
    fn mismatched_mixing_and_actions_are_typed_errors() {
        let (mut sim, _) = tiny_sim(6, 13, TransportKind::Memory);
        let wrong_mixing = MixingMatrix::identity(4);
        assert_eq!(
            sim.try_run_round_with_mixing(&[RoundAction::SyncOnly; 6], &wrong_mixing),
            Err(crate::error::EngineError::MixingSizeMismatch {
                expected: 6,
                got: 4
            })
        );
        assert_eq!(
            sim.try_run_round(&[RoundAction::SyncOnly; 3]),
            Err(crate::error::EngineError::ActionArityMismatch {
                expected: 6,
                got: 3
            })
        );
        // failed rounds must leave the simulation untouched
        assert_eq!(sim.round(), 0);
        sim.try_run_round(&[RoundAction::SyncOnly; 6])
            .expect("well-formed round runs");
        assert_eq!(sim.round(), 1);
    }

    #[test]
    fn feedback_replica_cap_bounds_links_under_changing_matchings() {
        // Cycle through every edge of a complete graph via per-round
        // 1-pair matchings: the uncapped state would accumulate one
        // replica per directed pair; the cap must hold it at n × cap
        // while every round still executes correctly.
        let n = 8;
        let cap = 2;
        let (mut sim, _) = tiny_sim_full(
            n,
            19,
            TransportKind::Memory,
            ModelCodec::TopK { k: 10 },
            n - 2,
        );
        sim.config.feedback_beta = Some(1.0);
        sim.config.feedback_replica_cap = Some(cap);
        sim.feedback = Some(ErrorFeedbackState::with_cap(n, 1.0, cap));
        for pair in 0..40usize {
            let a = (pair % n) as u32;
            let b = ((pair + 1 + pair / n) % n) as u32;
            if a == b || !sim.graph().has_edge(a as usize, b as usize) {
                continue;
            }
            let mixing = MixingMatrix::pairwise(n, &[(a, b)]);
            sim.run_round_with_mixing(&vec![RoundAction::SyncOnly; n], &mixing);
        }
        let fb = sim.feedback().unwrap();
        assert!(
            fb.active_links() <= n * cap,
            "cap breached: {} links > {}",
            fb.active_links(),
            n * cap
        );
        assert!(
            fb.total_evictions() > 0,
            "cycling matchings over a dense graph must evict"
        );
        for i in 0..n {
            assert!(
                sim.node_params(i).iter().all(|v| v.is_finite()),
                "node {i} produced non-finite parameters after evictions"
            );
        }
    }

    #[test]
    fn unset_replica_cap_adapts_to_dense_graphs_and_never_evicts() {
        // A 19-in-degree static graph exceeds DEFAULT_REPLICA_CAP; the
        // unset default must size itself to the graph so direct engine
        // users keep full residual memory (no silent cold restarts).
        let n = 20;
        let mut sim = tiny_sim_feedback(
            n,
            29,
            TransportKind::Memory,
            ModelCodec::TopK { k: 10 },
            n - 1,
            1.0,
        );
        assert_eq!(sim.feedback().unwrap().cap(), n - 1);
        for _ in 0..3 {
            sim.run_round(&vec![RoundAction::SyncOnly; n]);
        }
        let fb = sim.feedback().unwrap();
        assert_eq!(fb.total_evictions(), 0, "adaptive default must not evict");
        assert_eq!(fb.active_links(), n * (n - 1), "every link keeps a replica");
    }

    #[test]
    fn capped_feedback_on_static_topology_is_identical_to_uncapped() {
        // The default cap exceeds the paper's degrees, so static-topology
        // runs must be bit-identical whether the cap is the default or
        // effectively unbounded — the cap only changes behavior when a
        // schedule actually cycles beyond it.
        let codec = ModelCodec::TopK { k: 12 };
        let mut capped = tiny_sim_feedback(8, 67, TransportKind::Memory, codec, 4, 1.0);
        let mut unbounded = tiny_sim_feedback(8, 67, TransportKind::Memory, codec, 4, 1.0);
        unbounded.config.feedback_replica_cap = Some(usize::MAX);
        unbounded.feedback = Some(ErrorFeedbackState::with_cap(8, 1.0, usize::MAX));
        let actions = vec![RoundAction::Train; 8];
        for _ in 0..6 {
            capped.run_round(&actions);
            unbounded.run_round(&actions);
        }
        for i in 0..8 {
            assert_eq!(capped.node_params(i), unbounded.node_params(i));
        }
        assert_eq!(capped.feedback().unwrap().total_evictions(), 0);
    }

    #[test]
    fn feedback_with_dense_codec_is_a_bitwise_noop() {
        let (mut plain, _) = tiny_sim(6, 44, TransportKind::Memory);
        let mut fb = tiny_sim_feedback(6, 44, TransportKind::Memory, ModelCodec::DenseF32, 4, 1.0);
        let actions = vec![RoundAction::Train; 6];
        for _ in 0..4 {
            plain.run_round(&actions);
            fb.run_round(&actions);
        }
        for i in 0..6 {
            assert_eq!(plain.node_params(i), fb.node_params(i));
        }
        assert_eq!(
            fb.feedback().unwrap().active_links(),
            0,
            "lossless codec must never materialize feedback links"
        );
    }

    #[test]
    fn feedback_charges_identical_energy_to_plain_compression() {
        let codec = ModelCodec::TopK { k: 10 };
        let (mut plain, _) = tiny_sim_full(6, 52, TransportKind::Memory, codec, 4);
        let mut fb = tiny_sim_feedback(6, 52, TransportKind::Memory, codec, 4, 1.0);
        let actions = vec![RoundAction::SyncOnly; 6];
        for _ in 0..3 {
            plain.run_round(&actions);
            fb.run_round(&actions);
        }
        assert_eq!(
            plain.ledger().total_tx_bytes(),
            fb.ledger().total_tx_bytes()
        );
        assert_eq!(
            plain.ledger().total_rx_bytes(),
            fb.ledger().total_rx_bytes()
        );
        assert_eq!(
            plain.ledger().total_comm_wh().to_bits(),
            fb.ledger().total_comm_wh().to_bits(),
            "feedback is sender-local state: zero extra bytes, identical energy"
        );
    }

    #[test]
    fn feedback_rounds_are_deterministic() {
        let run = || {
            let mut sim = tiny_sim_feedback(
                6,
                73,
                TransportKind::Memory,
                ModelCodec::TopK { k: 12 },
                4,
                1.0,
            );
            for r in 0..5 {
                let actions: Vec<RoundAction> = (0..6)
                    .map(|i| {
                        if (r + i) % 2 == 0 {
                            RoundAction::Train
                        } else {
                            RoundAction::SyncOnly
                        }
                    })
                    .collect();
                sim.run_round(&actions);
            }
            sim.node_params(2).to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn quantized_sync_still_contracts_disagreement() {
        let (mut sim, _) = tiny_sim_full(8, 41, TransportKind::Memory, ModelCodec::QuantizedU16, 4);
        for _ in 0..3 {
            sim.run_round(&[RoundAction::Train; 8]);
        }
        let d_before = sim.disagreement();
        for _ in 0..10 {
            sim.run_round(&[RoundAction::SyncOnly; 8]);
        }
        assert!(
            sim.disagreement() < d_before * 0.6,
            "quantized sync failed to contract: {} -> {}",
            d_before,
            sim.disagreement()
        );
    }

    #[test]
    fn compressed_codecs_charge_monotonically_fewer_bytes() {
        let mut totals = Vec::new();
        for codec in [
            ModelCodec::DenseF32,
            ModelCodec::QuantizedU16,
            ModelCodec::QuantizedU8,
            ModelCodec::TopK { k: 10 },
        ] {
            let (mut sim, _) = tiny_sim_full(6, 51, TransportKind::Memory, codec, 4);
            sim.run_round(&[RoundAction::SyncOnly; 6]);
            totals.push((codec, sim.ledger().total_tx_bytes()));
        }
        for pair in totals.windows(2) {
            assert!(
                pair[1].1 < pair[0].1,
                "{:?} ({} B) should beat {:?} ({} B)",
                pair[1].0,
                pair[1].1,
                pair[0].0,
                pair[0].1
            );
        }
    }

    use skiptrain_energy::battery::{BatteryPolicy, BatterySetup, BatteryState};
    use skiptrain_energy::trace::{HarvestProfile, HarvestTrace};

    /// A tiny mixture-MLP fleet with battery gating configured at
    /// construction (the battery runtime is built by the constructor, so
    /// it cannot be injected after the fact like feedback state).
    fn tiny_sim_battery(
        n: usize,
        seed: u64,
        setup: BatterySetup,
        training_wh: Vec<f64>,
    ) -> Simulation {
        let spec = MixtureSpec {
            num_classes: 4,
            feature_dim: 6,
            modes_per_class: 1,
            separation: 1.6,
            noise: 0.5,
        };
        let task = MixtureTask::new(spec, 99);
        let datasets: Vec<Dataset> = (0..n).map(|i| task.sample(60, 10 + i as u64)).collect();
        let models: Vec<Sequential> = (0..n)
            .map(|i| skiptrain_nn::zoo::mlp(&[6, 12, 4], seed + i as u64))
            .collect();
        let graph = random_regular(n, 4, seed);
        let mixing = MixingMatrix::metropolis_hastings(&graph);
        let mut config = SimulationConfig::minimal(seed, 8, 2, 0.1);
        config.training_energy_wh = training_wh;
        config.battery = Some(setup);
        Simulation::new(models, datasets, graph, mixing, config)
    }

    fn no_harvest(n: usize) -> HarvestTrace {
        HarvestTrace::new(HarvestProfile::None, 600.0, n, 1, 0.0)
    }

    #[test]
    fn gated_nodes_charge_zero_comm_energy_and_never_train() {
        // nodes 0 and 3 start below a 50% threshold: they must neither
        // train nor fire a single byte, while the rest run normally
        let n = 8;
        let mut state = BatteryState::new(vec![1.0; n]);
        state.drain(0, 0.9);
        state.drain(3, 0.9);
        let setup = BatterySetup {
            state,
            trace: no_harvest(n),
            policy: BatteryPolicy::Threshold { min_fraction: 0.5 },
            node_policies: None,
        };
        let mut sim = tiny_sim_battery(n, 5, setup, vec![1e-3; n]);
        let frozen0 = sim.node_params(0).to_vec();
        for _ in 0..4 {
            sim.run_round(&vec![RoundAction::Train; n]);
        }
        for &i in &[0usize, 3] {
            assert_eq!(sim.ledger().node_tx_bytes(i), 0, "node {i} must not send");
            assert_eq!(
                sim.ledger().node_rx_bytes(i),
                0,
                "node {i} must not receive"
            );
            assert_eq!(
                sim.ledger().node_comm_wh(i),
                0.0,
                "gated node {i} must charge zero comm energy"
            );
            assert_eq!(
                sim.ledger().node_training_wh(i),
                0.0,
                "gated node {i} must not train"
            );
        }
        // an isolated node's model never moves (identity mixing row)
        assert_eq!(sim.node_params(0), &frozen0[..]);
        // the active majority trains and communicates as usual
        assert!(sim.ledger().node_comm_wh(1) > 0.0);
        assert!(sim.ledger().node_training_wh(1) > 0.0);
        let active = sim.battery_active().unwrap();
        assert!(!active[0] && !active[3] && active[1]);
    }

    #[test]
    fn battery_round_equals_manually_masked_round() {
        // one gated round must be bit-identical to running the plain
        // engine with the same masked mixing and gated actions — the
        // battery path adds bookkeeping, not new dynamics
        let n = 8;
        let seed = 6;
        let mut state = BatteryState::new(vec![1.0; n]);
        for &i in &[2usize, 5] {
            state.drain(i, 0.8);
        }
        let setup = BatterySetup {
            state,
            trace: no_harvest(n),
            policy: BatteryPolicy::Threshold { min_fraction: 0.5 },
            node_policies: None,
        };
        let costs = vec![1e-3; n];
        let mut gated = tiny_sim_battery(n, seed, setup, costs.clone());

        let (mut plain, _) = tiny_sim_full(n, seed, TransportKind::Memory, ModelCodec::DenseF32, 4);
        plain.config.training_energy_wh = costs;
        let mut active = vec![true; n];
        active[2] = false;
        active[5] = false;
        let masked = MixingMatrix::metropolis_hastings(plain.graph()).masked(&active);
        let manual_actions: Vec<RoundAction> = (0..n)
            .map(|i| {
                if active[i] {
                    RoundAction::Train
                } else {
                    RoundAction::SyncOnly
                }
            })
            .collect();

        for _ in 0..3 {
            gated.run_round(&vec![RoundAction::Train; n]);
            plain.run_round_with_mixing(&manual_actions, &masked);
        }
        for i in 0..n {
            assert_eq!(
                gated.node_params(i),
                plain.node_params(i),
                "node {i}: gated round diverged from the manual mask"
            );
            assert_eq!(
                gated.ledger().node_comm_wh(i).to_bits(),
                plain.ledger().node_comm_wh(i).to_bits(),
                "node {i}: comm accounting must be bit-identical"
            );
        }
    }

    #[test]
    fn brownout_burns_trickle_harvest_under_always_on() {
        // empty batteries + a harvest trickle far below the training cost:
        // always-on attempts every round, browns out every time, and the
        // whole harvest is burned without one completed training round
        let n = 6;
        let trickle = HarvestTrace::new(HarvestProfile::Constant { watts: 0.06 }, 600.0, n, 2, 0.0);
        // 0.06 W × 600 s = 0.01 Wh per round, training costs 0.05 Wh
        let setup = BatterySetup {
            state: BatteryState::with_initial_fraction(vec![1.0; n], 0.0),
            trace: trickle,
            policy: BatteryPolicy::AlwaysOn,
            node_policies: None,
        };
        let mut sim = tiny_sim_battery(n, 7, setup, vec![0.05; n]);
        for _ in 0..10 {
            sim.run_round(&vec![RoundAction::Train; n]);
        }
        assert_eq!(sim.battery_brownouts(), Some(10 * n as u64));
        assert_eq!(sim.ledger().total_training_wh(), 0.0);
        assert_eq!(sim.ledger().total_tx_bytes(), 0);
        let state = sim.battery_state().unwrap();
        assert!((state.total_harvested_wh() - 10.0 * 0.01 * n as f64).abs() < 1e-9);
        assert!(
            state.total_charge_wh() < 1e-12,
            "brown-outs must burn every banked watt-hour"
        );
        // a threshold policy on the same trace banks instead of burning
        let banked = BatterySetup {
            state: BatteryState::with_initial_fraction(vec![1.0; n], 0.0),
            trace: HarvestTrace::new(HarvestProfile::Constant { watts: 0.06 }, 600.0, n, 2, 0.0),
            policy: BatteryPolicy::Threshold { min_fraction: 0.08 },
            node_policies: None,
        };
        let mut sim2 = tiny_sim_battery(n, 7, banked, vec![0.05; n]);
        for _ in 0..10 {
            sim2.run_round(&vec![RoundAction::Train; n]);
        }
        assert!(
            sim2.ledger().total_training_wh() > 0.0,
            "threshold policy must convert the banked harvest into training"
        );
        assert_eq!(sim2.battery_brownouts(), Some(0));
    }

    #[test]
    fn battery_drain_reconciles_with_ledger_deltas() {
        // generous capacity (no clamping): every ledger watt-hour must
        // show up as battery drain, so charge = initial + accepted − spend
        let n = 6;
        let setup = BatterySetup {
            state: BatteryState::new(vec![50.0; n]),
            trace: HarvestTrace::new(HarvestProfile::Constant { watts: 0.5 }, 600.0, n, 3, 0.0),
            policy: BatteryPolicy::AlwaysOn,
            node_policies: None,
        };
        let mut sim = tiny_sim_battery(n, 9, setup, vec![0.02; n]);
        for r in 0..6 {
            let actions: Vec<RoundAction> = (0..n)
                .map(|i| {
                    if (r + i) % 2 == 0 {
                        RoundAction::Train
                    } else {
                        RoundAction::SyncOnly
                    }
                })
                .collect();
            sim.run_round(&actions);
        }
        let state = sim.battery_state().unwrap();
        for i in 0..n {
            let spend = sim.ledger().node_training_wh(i) + sim.ledger().node_comm_wh(i);
            assert!(
                (state.node_drained_wh(i) - spend).abs() < 1e-12,
                "node {i}: drained {} vs ledger spend {spend}",
                state.node_drained_wh(i)
            );
            let expected = state.initial_wh(i)
                + (state.node_harvested_wh(i) - state.node_wasted_wh(i))
                - spend;
            assert!(
                (state.charge_wh(i) - expected).abs() < 1e-9,
                "node {i}: conservation through the engine violated"
            );
        }
        assert_eq!(sim.battery_participations(), Some(6 * n as u64));
    }

    #[test]
    fn battery_rounds_are_deterministic() {
        let run = || {
            let n = 8;
            let setup = BatterySetup {
                state: BatteryState::with_initial_fraction(vec![0.5; n], 0.3),
                trace: HarvestTrace::new(
                    HarvestProfile::Diurnal {
                        peak_watts: 0.4,
                        period_rounds: 6.0,
                    },
                    600.0,
                    n,
                    11,
                    0.5,
                ),
                policy: BatteryPolicy::Hysteresis {
                    suspend_fraction: 0.2,
                    resume_fraction: 0.4,
                },
                node_policies: None,
            };
            let mut sim = tiny_sim_battery(n, 13, setup, vec![0.01; n]);
            for _ in 0..12 {
                sim.run_round(&vec![RoundAction::Train; n]);
            }
            (
                sim.node_params(4).to_vec(),
                sim.battery_state().unwrap().clone(),
                sim.battery_participations().unwrap(),
            )
        };
        let (p1, s1, c1) = run();
        let (p2, s2, c2) = run();
        assert_eq!(p1, p2);
        assert_eq!(s1, s2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn mean_model_eval_uses_average() {
        let (mut sim, test) = tiny_sim(4, 9, TransportKind::Memory);
        let mean = sim.mean_params();
        let (acc_direct, _) = sim.evaluate_mean_model(&test, usize::MAX);
        // setting every node to the mean and evaluating gives the same
        for i in 0..4 {
            sim.set_node_params(i, &mean);
        }
        let stats = sim.evaluate(&test, usize::MAX);
        assert!((stats.mean_accuracy - acc_direct).abs() < 1e-6);
        assert!(stats.std_accuracy < 1e-9);
    }

    /// Runs `rounds` alternating train/sync rounds and returns the full
    /// observable footprint: every node's committed model plus the
    /// serialized energy ledger (bit-identity on the JSON string pins
    /// every Wh and byte counter) plus the corrupted-frame count.
    fn corruption_footprint(mut sim: Simulation, rounds: usize) -> (Vec<Vec<f32>>, String, u64) {
        let n = sim.len();
        for r in 0..rounds {
            let actions: Vec<RoundAction> = (0..n)
                .map(|i| {
                    if (r + i) % 2 == 0 {
                        RoundAction::Train
                    } else {
                        RoundAction::SyncOnly
                    }
                })
                .collect();
            sim.run_round(&actions);
        }
        let params: Vec<Vec<f32>> = (0..n).map(|i| sim.node_params(i).to_vec()).collect();
        let ledger = serde_json::to_string(sim.ledger()).expect("ledger serializes");
        (params, ledger, sim.corrupted_frames())
    }

    #[test]
    fn corruption_degrades_exactly_like_drops_dense() {
        // {drop: 0, corrupt: p} must be observationally identical to
        // {drop: p, corrupt: 0}: same models bit-for-bit, same ledger
        // bytes and Wh — the only visible difference is the counter.
        let n = 8;
        let make = |drop, corrupt| {
            let t = TransportKind::Serialized {
                drop_prob: drop,
                corrupt_prob: corrupt,
            };
            tiny_sim_full(n, 17, t, ModelCodec::DenseF32, 4).0
        };
        let (p_drop, l_drop, c_drop) = corruption_footprint(make(0.3, 0.0), 6);
        let (p_corr, l_corr, c_corr) = corruption_footprint(make(0.0, 0.3), 6);
        assert_eq!(p_drop, p_corr, "models diverged between drop and corrupt");
        assert_eq!(l_drop, l_corr, "energy ledgers diverged");
        assert_eq!(c_drop, 0);
        assert!(c_corr > 0, "corruption must actually fire at p = 0.3");
    }

    #[test]
    fn corruption_degrades_exactly_like_drops_topk() {
        let n = 8;
        let make = |drop, corrupt| {
            let t = TransportKind::Serialized {
                drop_prob: drop,
                corrupt_prob: corrupt,
            };
            tiny_sim_full(n, 19, t, ModelCodec::TopK { k: 20 }, 4).0
        };
        let (p_drop, l_drop, c_drop) = corruption_footprint(make(0.4, 0.0), 6);
        let (p_corr, l_corr, c_corr) = corruption_footprint(make(0.0, 0.4), 6);
        assert_eq!(p_drop, p_corr);
        assert_eq!(l_drop, l_corr);
        assert_eq!(c_drop, 0);
        assert!(c_corr > 0);
    }

    #[test]
    fn corruption_degrades_exactly_like_drops_with_error_feedback() {
        // On the feedback path a corrupted frame must leave the link
        // replica untouched exactly like a drop (acknowledged-link
        // semantics) — replicas advancing on corrupt-rejected frames would
        // silently diverge the two runs.
        let n = 6;
        let make = |drop, corrupt| {
            let t = TransportKind::Serialized {
                drop_prob: drop,
                corrupt_prob: corrupt,
            };
            tiny_sim_feedback(n, 23, t, ModelCodec::TopK { k: 16 }, 3, 0.8)
        };
        let (p_drop, l_drop, c_drop) = corruption_footprint(make(0.4, 0.0), 6);
        let (p_corr, l_corr, c_corr) = corruption_footprint(make(0.0, 0.4), 6);
        assert_eq!(p_drop, p_corr, "feedback replicas diverged");
        assert_eq!(l_drop, l_corr);
        assert_eq!(c_drop, 0);
        assert!(c_corr > 0);
    }

    #[test]
    fn mixed_drop_and_corruption_loses_the_union() {
        // A {drop: a, corrupt: b} transport delivers exactly what a
        // {drop: a+b} transport delivers (one partitioned draw), so the
        // trained models and rx accounting agree bit-for-bit.
        let n = 8;
        let mixed = tiny_sim_full(
            n,
            29,
            TransportKind::Serialized {
                drop_prob: 0.2,
                corrupt_prob: 0.2,
            },
            ModelCodec::DenseF32,
            4,
        )
        .0;
        let pure = tiny_sim_full(
            n,
            29,
            TransportKind::Serialized {
                drop_prob: 0.4,
                corrupt_prob: 0.0,
            },
            ModelCodec::DenseF32,
            4,
        )
        .0;
        let (p_mixed, l_mixed, c_mixed) = corruption_footprint(mixed, 5);
        let (p_pure, l_pure, c_pure) = corruption_footprint(pure, 5);
        assert_eq!(p_mixed, p_pure);
        assert_eq!(l_mixed, l_pure);
        assert!(c_mixed > 0);
        assert_eq!(c_pure, 0);
    }

    #[test]
    fn zero_corrupt_prob_counts_nothing() {
        let (mut sim, _) = tiny_sim(
            6,
            31,
            TransportKind::Serialized {
                drop_prob: 0.3,
                corrupt_prob: 0.0,
            },
        );
        for _ in 0..5 {
            sim.run_round(&[RoundAction::SyncOnly; 6]);
        }
        assert_eq!(sim.corrupted_frames(), 0);
    }
}
