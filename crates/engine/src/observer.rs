//! Round-loop observation hooks.
//!
//! The executor knows *how* to run a round; what each figure, table, or
//! production monitor wants to *record* about it varies widely. A
//! [`RoundObserver`] receives callbacks at the three interesting points of
//! the round loop — round start, round end, and evaluation — with mutable
//! access to the [`Simulation`] so it can compute derived quantities
//! (mean-model accuracy, consensus disagreement, battery state) without the
//! driver hard-coding them.
//!
//! The built-in observers reimplement everything the legacy monolithic
//! driver recorded — the accuracy/energy learning curve
//! ([`CurveObserver`]), the averaged-model curve of Figure 1
//! ([`MeanModelObserver`]), per-round energy streaming
//! ([`EnergyTraceObserver`]) — plus new scenarios such as stopping at a
//! target accuracy ([`EarlyStop`]).
//!
//! `on_round_end` and `on_eval` return [`ControlFlow`]: `Break(())` stops
//! the experiment after the current round, letting observers implement
//! early-exit policies.

use crate::executor::{RoundAction, Simulation};
use crate::metrics::{EvalStats, MetricsRecorder};
use skiptrain_data::Dataset;
use std::ops::ControlFlow;
use std::sync::Arc;

/// What is about to happen in one round.
#[derive(Debug)]
pub struct RoundCtx<'a> {
    /// Round index (0-based).
    pub round: usize,
    /// Per-node actions the policy chose for this round.
    pub actions: &'a [RoundAction],
}

/// What happened in one completed round.
#[derive(Debug)]
pub struct RoundReport<'a> {
    /// Round index (0-based).
    pub round: usize,
    /// Per-node actions executed this round.
    pub actions: &'a [RoundAction],
    /// Number of nodes that ran local training this round.
    pub trained_nodes: usize,
    /// Mean training loss over the nodes that trained, if any did.
    pub train_loss: Option<f32>,
    /// Training energy spent in this round (Wh, all nodes).
    pub round_training_wh: f64,
    /// Communication energy spent in this round (Wh, all nodes).
    pub round_comm_wh: f64,
    /// Cumulative total energy after this round (Wh).
    pub cumulative_wh: f64,
}

/// One periodic evaluation.
#[derive(Debug)]
pub struct EvalReport<'a> {
    /// Round count at the evaluation point (1-based: evaluated after this
    /// many rounds).
    pub round: usize,
    /// Cross-node accuracy statistics on the test set.
    pub stats: &'a EvalStats,
    /// Cumulative total energy (Wh).
    pub total_wh: f64,
    /// Cumulative training energy (Wh).
    pub training_wh: f64,
}

/// Callbacks threaded through the round loop.
///
/// All methods default to no-ops so implementors override only what they
/// need. Returning `ControlFlow::Break(())` from `on_round_end` or
/// `on_eval` stops the run after the current round.
pub trait RoundObserver: Send {
    /// Called before a round's local-compute phase, with the actions the
    /// policy decided.
    fn on_round_start(&mut self, _sim: &Simulation, _ctx: &RoundCtx<'_>) {}

    /// Called after a round's aggregate + energy-accounting phases.
    fn on_round_end(
        &mut self,
        _sim: &mut Simulation,
        _report: &RoundReport<'_>,
    ) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }

    /// Called after each periodic evaluation.
    fn on_eval(&mut self, _sim: &mut Simulation, _report: &EvalReport<'_>) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

/// Records the accuracy/energy learning curve (the legacy driver's
/// `MetricsRecorder` behavior, as an observer).
#[derive(Debug, Default)]
pub struct CurveObserver {
    recorder: MetricsRecorder,
}

impl CurveObserver {
    /// An empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded curve so far.
    pub fn recorder(&self) -> &MetricsRecorder {
        &self.recorder
    }

    /// Consumes the observer, yielding the recorded curve.
    pub fn into_recorder(self) -> MetricsRecorder {
        self.recorder
    }
}

impl RoundObserver for CurveObserver {
    fn on_eval(&mut self, _sim: &mut Simulation, report: &EvalReport<'_>) -> ControlFlow<()> {
        self.recorder
            .record(report.stats, report.total_wh, report.training_wh);
        ControlFlow::Continue(())
    }
}

/// Records the accuracy of the *averaged* model at every evaluation point —
/// the hypothetical all-reduce curve of Figure 1.
#[derive(Debug)]
pub struct MeanModelObserver {
    test: Arc<Dataset>,
    max_samples: usize,
    curve: Vec<(usize, f32)>,
}

impl MeanModelObserver {
    /// Evaluates the mean model on (a fixed subsample of) `test`.
    pub fn new(test: Arc<Dataset>, max_samples: usize) -> Self {
        Self {
            test,
            max_samples,
            curve: Vec::new(),
        }
    }

    /// The `(round, accuracy)` curve recorded so far.
    pub fn curve(&self) -> &[(usize, f32)] {
        &self.curve
    }

    /// Consumes the observer, yielding the curve.
    pub fn into_curve(self) -> Vec<(usize, f32)> {
        self.curve
    }
}

impl RoundObserver for MeanModelObserver {
    fn on_eval(&mut self, sim: &mut Simulation, report: &EvalReport<'_>) -> ControlFlow<()> {
        let (accuracy, _) = sim.evaluate_mean_model(&self.test, self.max_samples);
        self.curve.push((report.round, accuracy));
        ControlFlow::Continue(())
    }
}

/// One row of the per-round energy stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundEnergy {
    /// Round index (0-based).
    pub round: usize,
    /// Nodes that trained this round.
    pub trained_nodes: usize,
    /// Training energy of this round (Wh).
    pub training_wh: f64,
    /// Communication energy of this round (Wh).
    pub comm_wh: f64,
}

/// Streams per-round energy spending — the observer form of the energy
/// tallies the legacy driver only exposed as end-of-run totals.
#[derive(Debug, Default)]
pub struct EnergyTraceObserver {
    rows: Vec<RoundEnergy>,
}

impl EnergyTraceObserver {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-round rows recorded so far.
    pub fn rows(&self) -> &[RoundEnergy] {
        &self.rows
    }

    /// Total training energy across recorded rounds (Wh).
    pub fn total_training_wh(&self) -> f64 {
        self.rows.iter().map(|r| r.training_wh).sum()
    }
}

impl RoundObserver for EnergyTraceObserver {
    fn on_round_end(&mut self, _sim: &mut Simulation, report: &RoundReport<'_>) -> ControlFlow<()> {
        self.rows.push(RoundEnergy {
            round: report.round,
            trained_nodes: report.trained_nodes,
            training_wh: report.round_training_wh,
            comm_wh: report.round_comm_wh,
        });
        ControlFlow::Continue(())
    }
}

/// One row of the per-round battery stream.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryRound {
    /// Round index (0-based).
    pub round: usize,
    /// Per-node charge after the round settled (Wh).
    pub charge_wh: Vec<f64>,
    /// Per-node participation mask the battery policy chose this round.
    pub active: Vec<bool>,
    /// Cumulative harvested energy offered so far (Wh, all nodes).
    pub harvested_wh: f64,
    /// Cumulative energy drained from batteries so far (Wh, all nodes).
    pub drained_wh: f64,
}

/// Records the per-node charge series and participation masks of a
/// battery-gated run — the closed-loop counterpart of
/// [`EnergyTraceObserver`]. Rounds executed without a battery configured
/// record nothing.
#[derive(Debug, Default)]
pub struct BatteryObserver {
    rows: Vec<BatteryRound>,
}

impl BatteryObserver {
    /// An empty charge trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-round rows recorded so far.
    pub fn rows(&self) -> &[BatteryRound] {
        &self.rows
    }

    /// `node`'s charge series across recorded rounds (Wh).
    pub fn charge_series(&self, node: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r.charge_wh[node]).collect()
    }

    /// Fraction of node-rounds that participated, over recorded rounds.
    pub fn participation_fraction(&self) -> f64 {
        let total: usize = self.rows.iter().map(|r| r.active.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let active: usize = self
            .rows
            .iter()
            .map(|r| r.active.iter().filter(|&&a| a).count())
            .sum();
        active as f64 / total as f64
    }
}

impl RoundObserver for BatteryObserver {
    fn on_round_end(&mut self, sim: &mut Simulation, report: &RoundReport<'_>) -> ControlFlow<()> {
        if let (Some(state), Some(active)) = (sim.battery_state(), sim.battery_active()) {
            self.rows.push(BatteryRound {
                round: report.round,
                charge_wh: (0..state.len()).map(|i| state.charge_wh(i)).collect(),
                active: active.to_vec(),
                harvested_wh: state.total_harvested_wh(),
                drained_wh: state.total_drained_wh(),
            });
        }
        ControlFlow::Continue(())
    }
}

/// Stops the run once mean test accuracy reaches a target.
#[derive(Debug)]
pub struct EarlyStop {
    target_accuracy: f32,
    triggered_at: Option<usize>,
}

impl EarlyStop {
    /// Stops when `stats.mean_accuracy >= target_accuracy`.
    pub fn at_accuracy(target_accuracy: f32) -> Self {
        Self {
            target_accuracy,
            triggered_at: None,
        }
    }

    /// The round count at which the stop triggered, if it did.
    pub fn triggered_at(&self) -> Option<usize> {
        self.triggered_at
    }
}

impl RoundObserver for EarlyStop {
    fn on_eval(&mut self, _sim: &mut Simulation, report: &EvalReport<'_>) -> ControlFlow<()> {
        if report.stats.mean_accuracy >= self.target_accuracy {
            self.triggered_at.get_or_insert(report.round);
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SimulationConfig;
    use skiptrain_data::synth::{MixtureSpec, MixtureTask};
    use skiptrain_nn::Sequential;
    use skiptrain_topology::regular::random_regular;
    use skiptrain_topology::MixingMatrix;

    fn tiny_sim(n: usize) -> (Simulation, Arc<Dataset>) {
        let spec = MixtureSpec {
            num_classes: 3,
            feature_dim: 5,
            modes_per_class: 1,
            separation: 1.8,
            noise: 0.4,
        };
        let task = MixtureTask::new(spec, 17);
        let datasets: Vec<Dataset> = (0..n).map(|i| task.sample(40, i as u64)).collect();
        let test = Arc::new(task.sample(120, 999));
        let models: Vec<Sequential> = (0..n)
            .map(|i| skiptrain_nn::zoo::mlp(&[5, 8, 3], i as u64))
            .collect();
        let graph = random_regular(n, 2, 3);
        let mixing = MixingMatrix::metropolis_hastings(&graph);
        let config = SimulationConfig::minimal(3, 8, 2, 0.2);
        (
            Simulation::new(models, datasets, graph, mixing, config),
            test,
        )
    }

    fn eval_and_notify(
        sim: &mut Simulation,
        test: &Arc<Dataset>,
        observers: &mut [&mut dyn RoundObserver],
    ) -> ControlFlow<()> {
        let stats = sim.evaluate(test, usize::MAX);
        let report = EvalReport {
            round: sim.round(),
            stats: &stats,
            total_wh: sim.ledger().total_wh(),
            training_wh: sim.ledger().total_training_wh(),
        };
        for obs in observers {
            if obs.on_eval(sim, &report).is_break() {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    }

    #[test]
    fn curve_and_mean_model_observers_record_per_eval() {
        let (mut sim, test) = tiny_sim(6);
        let mut curve = CurveObserver::new();
        let mut mean = MeanModelObserver::new(Arc::clone(&test), usize::MAX);
        for _ in 0..3 {
            sim.run_round(&[RoundAction::Train; 6]);
            let mut observers: [&mut dyn RoundObserver; 2] = [&mut curve, &mut mean];
            assert!(eval_and_notify(&mut sim, &test, &mut observers).is_continue());
        }
        assert_eq!(curve.recorder().points().len(), 3);
        assert_eq!(mean.curve().len(), 3);
        // rounds are recorded in execution order
        assert_eq!(mean.curve()[0].0, 1);
        assert_eq!(curve.into_recorder().last().unwrap().round, 3);
    }

    #[test]
    fn early_stop_breaks_once_target_reached() {
        let (mut sim, test) = tiny_sim(6);
        let mut stop = EarlyStop::at_accuracy(0.0); // any accuracy satisfies
        sim.run_round(&[RoundAction::Train; 6]);
        let mut observers: [&mut dyn RoundObserver; 1] = [&mut stop];
        assert!(eval_and_notify(&mut sim, &test, &mut observers).is_break());
        assert_eq!(stop.triggered_at(), Some(1));
    }

    #[test]
    fn battery_observer_records_charge_and_masks() {
        use skiptrain_energy::battery::{BatteryPolicy, BatterySetup, BatteryState};
        use skiptrain_energy::trace::{HarvestProfile, HarvestTrace};

        let n = 4;
        let (mut sim, _test) = tiny_sim(n);
        let mut obs = BatteryObserver::new();

        // without a battery configured, the observer records nothing
        sim.run_round(&[RoundAction::Train; 4]);
        let report = RoundReport {
            round: 0,
            actions: &[RoundAction::Train; 4],
            trained_nodes: 4,
            train_loss: sim.last_train_loss(),
            round_training_wh: 0.0,
            round_comm_wh: 0.0,
            cumulative_wh: sim.ledger().total_wh(),
        };
        assert!(obs.on_round_end(&mut sim, &report).is_continue());
        assert!(obs.rows().is_empty());

        // with a battery: charge series and masks stream per round
        let spec = MixtureSpec {
            num_classes: 3,
            feature_dim: 5,
            modes_per_class: 1,
            separation: 1.8,
            noise: 0.4,
        };
        let task = MixtureTask::new(spec, 17);
        let datasets: Vec<Dataset> = (0..n).map(|i| task.sample(40, i as u64)).collect();
        let models: Vec<Sequential> = (0..n)
            .map(|i| skiptrain_nn::zoo::mlp(&[5, 8, 3], i as u64))
            .collect();
        let graph = random_regular(n, 2, 3);
        let mixing = MixingMatrix::metropolis_hastings(&graph);
        let mut config = SimulationConfig::minimal(3, 8, 2, 0.2);
        config.training_energy_wh = vec![0.05; n];
        config.battery = Some(BatterySetup {
            state: BatteryState::new(vec![1.0; n]),
            trace: HarvestTrace::new(HarvestProfile::None, 60.0, n, 7, 0.0),
            policy: BatteryPolicy::Threshold { min_fraction: 0.1 },
            node_policies: None,
        });
        let mut sim = Simulation::new(models, datasets, graph, mixing, config);
        for round in 0..2 {
            sim.run_round(&[RoundAction::Train; 4]);
            let report = RoundReport {
                round,
                actions: &[RoundAction::Train; 4],
                trained_nodes: 4,
                train_loss: sim.last_train_loss(),
                round_training_wh: 0.0,
                round_comm_wh: 0.0,
                cumulative_wh: sim.ledger().total_wh(),
            };
            assert!(obs.on_round_end(&mut sim, &report).is_continue());
        }
        assert_eq!(obs.rows().len(), 2);
        assert!(obs.rows().iter().all(|r| r.active.iter().all(|&a| a)));
        assert_eq!(obs.participation_fraction(), 1.0);
        let series = obs.charge_series(0);
        assert!(
            series[1] < series[0] && series[0] < 1.0,
            "training drain must show up in the charge series"
        );
        assert!(obs.rows()[1].drained_wh > obs.rows()[0].drained_wh);
    }

    #[test]
    fn energy_trace_streams_round_deltas() {
        let (mut sim, _test) = tiny_sim(4);
        sim.config_mut().training_energy_wh = vec![1.0, 2.0, 3.0, 4.0];
        let mut trace = EnergyTraceObserver::new();
        let mut prev_train = 0.0;
        let mut prev_comm = 0.0;
        for round in 0..2 {
            let actions = if round == 0 {
                vec![RoundAction::Train; 4]
            } else {
                vec![RoundAction::SyncOnly; 4]
            };
            sim.run_round(&actions);
            let report = RoundReport {
                round,
                actions: &actions,
                trained_nodes: if round == 0 { 4 } else { 0 },
                train_loss: sim.last_train_loss(),
                round_training_wh: sim.ledger().total_training_wh() - prev_train,
                round_comm_wh: sim.ledger().total_comm_wh() - prev_comm,
                cumulative_wh: sim.ledger().total_wh(),
            };
            prev_train = sim.ledger().total_training_wh();
            prev_comm = sim.ledger().total_comm_wh();
            let flow = trace.on_round_end(&mut sim, &report);
            assert!(flow.is_continue());
        }
        assert_eq!(trace.rows().len(), 2);
        assert!((trace.rows()[0].training_wh - 10.0).abs() < 1e-9);
        assert_eq!(trace.rows()[1].training_wh, 0.0);
        assert!((trace.total_training_wh() - 10.0).abs() < 1e-9);
    }
}
