//! The discrete-event simulation core.
//!
//! The lockstep round loop the executor started from assumes every node
//! computes at the same speed and every message arrives instantly — a
//! fine model for the paper's synchronous experiments, but not for the
//! energy-harvesting fleets it targets, where compute speeds differ,
//! links carry latency, and nodes join and leave as charge allows. This
//! module supplies the event layer underneath both regimes:
//!
//! * [`EventQueue`] — a priority queue keyed by `(time, seq)`. `seq` is a
//!   monotone push counter, so two events scheduled for the same virtual
//!   tick pop in insertion order: the schedule is a pure function of the
//!   push sequence, never of heap internals or thread timing.
//! * [`Event`] — the typed vocabulary: [`Event::TrainComplete`],
//!   [`Event::MessageArrive`], [`Event::PolicyTick`] (churn and battery
//!   decisions fire on the round boundary), [`Event::Join`],
//!   [`Event::Leave`], and [`Event::EvalTick`] (closes a round).
//! * [`ComputeProfile`] — per-node virtual clock rates: homogeneous,
//!   explicit per-node speed factors, or a seeded straggler tail.
//! * [`LatencyModel`] — per-link delivery delay: zero, constant, or a
//!   seeded per-(round, edge) distribution.
//! * [`ChurnModel`] — seeded per-round leave/rejoin draws; an absent
//!   node's clock freezes and it costs nothing until it rejoins.
//! * [`EventEngine`] — per-node clocks plus the round driver
//!   [`EventEngine::begin_round`], which plays one round's events and
//!   reports the participation mask and the edges whose messages missed
//!   the deadline.
//!
//! # Round semantics
//!
//! The two execution regimes compile onto the same event timeline and
//! differ only in what a round *waits for* ([`RoundSemantics`]):
//!
//! * **Barrier** (the synchronous runner): the round ends when the last
//!   message has arrived. Stragglers and latency stretch virtual time but
//!   never change *which* messages are aggregated — which is why the
//!   event core reproduces the legacy lockstep results bit for bit under
//!   any barrier timing, not just the zero-latency default.
//! * **Deadline** (async gossip): the round closes a fixed slack after
//!   the slowest participant finishes computing. A message arriving after
//!   the deadline is a *late edge*: the executor treats it exactly like a
//!   transport drop — the sender's transmit energy is charged, no receive
//!   is charged, the mixing weight folds back into the receiver's self
//!   weight, and error-feedback replicas do not advance.
//!
//! Everything is drawn from dedicated seed streams via the same
//! `derive_seed`/`stream_rng` discipline the rest of the workspace uses,
//! so a run is a pure function of `(config, seed)` at every thread count;
//! `begin_round` itself is serial and allocation-free at steady state
//! (the heap, masks, and scratch vectors retain capacity across rounds).

use crate::executor::RoundAction;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use skiptrain_linalg::rng::{derive_seed, stream_rng};
use skiptrain_topology::MixingMatrix;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual ticks a homogeneous training round costs. Sync-only rounds
/// cost zero compute ticks (the model is shared as-is); latency and
/// straggler factors scale relative to this base, so its absolute value
/// only fixes the resolution of the virtual clock.
pub const BASE_TRAIN_TICKS: u64 = 1_000_000;

/// Seed stream for per-(round, node) compute-time draws.
const COMPUTE_STREAM: u64 = 0xEC01;
/// Seed stream for per-(round, edge) latency draws.
const LATENCY_STREAM: u64 = 0xEC02;
/// Seed stream for per-(round, node) churn draws.
const CHURN_STREAM: u64 = 0xEC03;

/// A typed simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `node` finished its local-compute phase for the round.
    TrainComplete {
        /// The node whose compute finished.
        node: u32,
    },
    /// The message on directed edge `src → dst` reached the receiver.
    MessageArrive {
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
    },
    /// The round-boundary policy point: harvest recharge, battery gating,
    /// and churn decisions all resolve here.
    PolicyTick,
    /// `node` (re)joined the fleet.
    Join {
        /// The joining node.
        node: u32,
    },
    /// `node` left the fleet; its clock freezes and it costs nothing
    /// until a later [`Event::Join`].
    Leave {
        /// The leaving node.
        node: u32,
    },
    /// The round closed; evaluation observers may fire.
    EvalTick,
}

/// A scheduled event: ordered by `(time, seq)` — earliest tick first,
/// insertion order within a tick.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled {
    key: Reverse<(u64, u64)>,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic priority queue of [`Event`]s.
///
/// Keys are `(time, seq)` where `seq` is a monotone counter assigned at
/// push: ties at the same virtual tick pop in insertion order, making the
/// pop sequence a pure function of the push sequence — reproducible
/// across runs, platforms, and rayon pool sizes.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at virtual tick `time`.
    pub fn push(&mut self, time: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            key: Reverse((time, seq)),
            event,
        });
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|s| {
            let Reverse((time, _)) = s.key;
            (time, s.event)
        })
    }

    /// The tick of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.key.0 .0)
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// How long a node's local-compute phase takes, in virtual ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum ComputeProfile {
    /// Every node trains in exactly [`BASE_TRAIN_TICKS`] — the lockstep
    /// assumption, and the default.
    #[default]
    Homogeneous,
    /// Explicit per-node speed factors: node `i` trains in
    /// `factors[i] × BASE_TRAIN_TICKS`. Must hold one finite positive
    /// factor per node.
    PerNode {
        /// Round-duration multiplier per node (`1.0` = nominal speed).
        factors: Vec<f64>,
    },
    /// A two-point straggler distribution: each (round, node) draw is a
    /// straggler with probability `tail_prob`, training `tail_factor ×`
    /// slower than nominal that round. This is the classic transient
    /// straggler tail (thermal throttling, background load) rather than a
    /// permanently slow device — use [`ComputeProfile::PerNode`] for
    /// those.
    StragglerTail {
        /// Probability a given node straggles in a given round.
        tail_prob: f64,
        /// Slowdown multiplier applied to a straggling round (`≥ 1`).
        tail_factor: f64,
    },
}

/// Scales a tick count by a factor, keeping at least one tick.
fn scale_ticks(base: u64, factor: f64) -> u64 {
    ((base as f64) * factor).round().max(1.0) as u64
}

impl ComputeProfile {
    /// True for the homogeneous (lockstep-equivalent) profile.
    pub fn is_uniform(&self) -> bool {
        matches!(self, ComputeProfile::Homogeneous)
    }

    /// Virtual ticks `node`'s training takes in `round`. Deterministic in
    /// `(seed, round, node)`.
    pub fn train_ticks(&self, seed: u64, round: u64, node: usize, base: u64) -> u64 {
        match self {
            ComputeProfile::Homogeneous => base,
            ComputeProfile::PerNode { factors } => scale_ticks(base, factors[node]),
            ComputeProfile::StragglerTail {
                tail_prob,
                tail_factor,
            } => {
                let mut rng = stream_rng(seed, (round << 24) | node as u64);
                if rng.random::<f64>() < *tail_prob {
                    scale_ticks(base, *tail_factor)
                } else {
                    base
                }
            }
        }
    }
}

/// Per-link message delivery delay, in virtual ticks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LatencyModel {
    /// Instant delivery — the lockstep assumption, and the default.
    #[default]
    Zero,
    /// Every link delays every message by a fixed tick count.
    Constant {
        /// Delivery delay in virtual ticks.
        ticks: u64,
    },
    /// Seeded per-(round, edge) uniform jitter around a mean:
    /// `mean_ticks × (1 ± jitter)` with `jitter ∈ [0, 1]`.
    Seeded {
        /// Mean delivery delay in virtual ticks.
        mean_ticks: u64,
        /// Relative half-width of the uniform jitter band (`0` = constant).
        jitter: f64,
    },
}

impl LatencyModel {
    /// True for the zero-latency (lockstep-equivalent) model.
    pub fn is_zero(&self) -> bool {
        matches!(self, LatencyModel::Zero)
    }

    /// Virtual ticks the message on `src → dst` spends in flight in
    /// `round`. Deterministic in `(seed, round, src, dst)`.
    pub fn link_ticks(&self, seed: u64, round: u64, src: usize, dst: usize) -> u64 {
        match *self {
            LatencyModel::Zero => 0,
            LatencyModel::Constant { ticks } => ticks,
            LatencyModel::Seeded { mean_ticks, jitter } => {
                let stream = (round << 40) ^ ((src as u64) << 20) ^ dst as u64;
                let mut rng = stream_rng(seed, stream);
                let u = 2.0 * rng.random::<f64>() - 1.0;
                scale_ticks(mean_ticks.max(1), 1.0 + jitter * u)
            }
        }
    }
}

/// Seeded per-round membership churn: each present node leaves with
/// `leave_prob`, each absent node rejoins with `rejoin_prob`, decided at
/// the round-boundary [`Event::PolicyTick`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Per-round probability a present node leaves.
    pub leave_prob: f64,
    /// Per-round probability an absent node rejoins.
    pub rejoin_prob: f64,
}

/// What closes a round — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundSemantics {
    /// Wait for every message: stragglers and latency stretch virtual
    /// time but never drop an edge (the synchronous runner).
    Barrier,
    /// Close the round `slack_ticks` after the slowest participant's
    /// compute finishes; later arrivals are late edges, treated as drops
    /// (async gossip).
    Deadline {
        /// Grace period after the last compute completion, in ticks.
        slack_ticks: u64,
    },
}

/// Aggregate event-layer counters for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventStats {
    /// Total events processed.
    pub events: u64,
    /// Messages that missed their round deadline (deadline semantics only).
    pub late_messages: u64,
    /// Churn join events applied.
    pub joins: u64,
    /// Churn leave events applied.
    pub leaves: u64,
}

/// The per-fleet event runtime: the queue, per-node virtual clocks, the
/// churn presence mask, and the reusable per-round outputs the executor
/// consumes ([`EventEngine::late_edges`] and the gated action/mixing
/// buffers). One engine drives one simulation across its whole run.
#[derive(Debug, Clone)]
pub struct EventEngine {
    seed: u64,
    compute: ComputeProfile,
    latency: LatencyModel,
    churn: Option<ChurnModel>,
    semantics: RoundSemantics,
    queue: EventQueue,
    /// Per-node virtual clock: where this node's local time stands.
    /// Present nodes resynchronize at every round boundary (they wait at
    /// the barrier / deadline); an absent node's clock freezes until it
    /// rejoins.
    clocks: Vec<u64>,
    present: Vec<bool>,
    absent: usize,
    /// Per-node compute-completion tick for the current round.
    completions: Vec<u64>,
    /// Sorted directed edges whose message missed the round deadline.
    late: Vec<(u32, u32)>,
    /// Presence-gated actions (absent nodes demoted to `SyncOnly`).
    pub(crate) gated: Vec<RoundAction>,
    /// Presence-masked effective mixing (identity rows for absent nodes).
    pub(crate) masked: MixingMatrix,
    now: u64,
    stats: EventStats,
}

impl EventEngine {
    /// Creates an engine for an `n`-node fleet.
    ///
    /// # Panics
    /// Panics if `n == 0`, if a [`ComputeProfile::PerNode`] factor vector
    /// does not hold one finite positive factor per node, if straggler or
    /// churn probabilities fall outside `[0, 1]`, if a straggler tail
    /// factor is below `1`, or if a seeded latency jitter falls outside
    /// `[0, 1]`. (The core crate's config validation reports these as
    /// typed errors before an engine is ever built.)
    pub fn new(
        n: usize,
        seed: u64,
        compute: ComputeProfile,
        latency: LatencyModel,
        churn: Option<ChurnModel>,
        semantics: RoundSemantics,
    ) -> Self {
        assert!(n > 0, "empty fleet");
        match &compute {
            ComputeProfile::Homogeneous => {}
            ComputeProfile::PerNode { factors } => {
                assert_eq!(factors.len(), n, "one compute factor per node required");
                assert!(
                    factors.iter().all(|f| f.is_finite() && *f > 0.0),
                    "compute factors must be finite and positive"
                );
            }
            ComputeProfile::StragglerTail {
                tail_prob,
                tail_factor,
            } => {
                assert!(
                    tail_prob.is_finite() && (0.0..=1.0).contains(tail_prob),
                    "straggler probability must lie in [0, 1]"
                );
                assert!(
                    tail_factor.is_finite() && *tail_factor >= 1.0,
                    "straggler tail factor must be ≥ 1"
                );
            }
        }
        if let LatencyModel::Seeded { jitter, .. } = latency {
            assert!(
                jitter.is_finite() && (0.0..=1.0).contains(&jitter),
                "latency jitter must lie in [0, 1]"
            );
        }
        if let Some(c) = churn {
            assert!(
                c.leave_prob.is_finite() && (0.0..=1.0).contains(&c.leave_prob),
                "leave probability must lie in [0, 1]"
            );
            assert!(
                c.rejoin_prob.is_finite() && (0.0..=1.0).contains(&c.rejoin_prob),
                "rejoin probability must lie in [0, 1]"
            );
        }
        Self {
            seed,
            compute,
            latency,
            churn,
            semantics,
            queue: EventQueue::new(),
            clocks: vec![0; n],
            present: vec![true; n],
            absent: 0,
            completions: vec![0; n],
            late: Vec::new(),
            gated: Vec::with_capacity(n),
            masked: MixingMatrix::identity(n),
            now: 0,
            stats: EventStats::default(),
        }
    }

    /// A lockstep-equivalent engine: homogeneous compute, zero latency,
    /// no churn, barrier rounds. Driving a simulation through this engine
    /// reproduces the legacy synchronous loop bit for bit while stamping
    /// the energy ledger with virtual round-end times.
    pub fn lockstep(n: usize, seed: u64) -> Self {
        Self::new(
            n,
            seed,
            ComputeProfile::Homogeneous,
            LatencyModel::Zero,
            None,
            RoundSemantics::Barrier,
        )
    }

    /// Fleet size.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True for a zero-node engine (not constructible).
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Current virtual time (the last closed round's end tick).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Aggregate event counters so far.
    pub fn stats(&self) -> EventStats {
        self.stats
    }

    /// Per-node presence mask after the last round's churn draws.
    pub fn present(&self) -> &[bool] {
        &self.present
    }

    /// True when no node is currently absent.
    pub fn all_present(&self) -> bool {
        self.absent == 0
    }

    /// Directed edges whose message missed the last round's deadline,
    /// sorted ascending. Always empty under barrier semantics.
    pub fn late_edges(&self) -> &[(u32, u32)] {
        &self.late
    }

    /// Plays one round's events: churn draws at the policy tick, per-node
    /// compute completions, per-edge message arrivals, deadline
    /// classification, and the closing eval tick. After this returns,
    /// [`EventEngine::now`] is the round-end tick, and
    /// [`EventEngine::present`] / [`EventEngine::late_edges`] describe
    /// what the executor must mask.
    ///
    /// Serial and deterministic: the outcome is a pure function of
    /// `(seed, round, actions, mixing, presence)`.
    ///
    /// # Panics
    /// Panics if `actions` or `mixing` disagree with the fleet size.
    pub fn begin_round(&mut self, round: usize, actions: &[RoundAction], mixing: &MixingMatrix) {
        let n = self.len();
        assert_eq!(actions.len(), n, "one action per node required");
        assert_eq!(mixing.len(), n, "mixing matrix size mismatch");
        debug_assert!(self.queue.is_empty(), "previous round fully drained");
        let round_u = round as u64;

        // Policy tick: all membership changes resolve at the round
        // boundary, in node order (the push sequence fixes tie order).
        self.queue.push(self.now, Event::PolicyTick);
        if let Some(churn) = self.churn {
            let cseed = derive_seed(self.seed, CHURN_STREAM);
            for i in 0..n {
                let mut rng = stream_rng(cseed, (round_u << 24) | i as u64);
                let u = rng.random::<f64>();
                if self.present[i] {
                    if u < churn.leave_prob {
                        self.queue.push(self.now, Event::Leave { node: i as u32 });
                    }
                } else if u < churn.rejoin_prob {
                    self.queue.push(self.now, Event::Join { node: i as u32 });
                }
            }
        }
        while let Some((t, ev)) = self.queue.pop() {
            self.stats.events += 1;
            match ev {
                Event::PolicyTick => {}
                Event::Leave { node } => {
                    self.present[node as usize] = false;
                    self.absent += 1;
                    self.stats.leaves += 1;
                }
                Event::Join { node } => {
                    // the rejoining clock jumps to the current boundary:
                    // no virtual time passed for work it never did
                    self.present[node as usize] = true;
                    self.clocks[node as usize] = t;
                    self.absent -= 1;
                    self.stats.joins += 1;
                }
                // lint:allow(no_panic, "phase invariant: the boundary queue is drained before compute events are pushed")
                _ => unreachable!("only churn events fire at the round boundary"),
            }
        }

        // Compute phase: every present node finishes its local work at
        // clock + cost (sync-only rounds share the model as-is, costing
        // zero compute ticks).
        let cseed = derive_seed(self.seed, COMPUTE_STREAM);
        let mut latest_completion = self.now;
        for (i, &action) in actions.iter().enumerate() {
            if !self.present[i] {
                self.completions[i] = self.clocks[i];
                continue;
            }
            let cost = match action {
                RoundAction::Train => self
                    .compute
                    .train_ticks(cseed, round_u, i, BASE_TRAIN_TICKS),
                RoundAction::SyncOnly => 0,
            };
            self.queue.push(
                self.clocks[i] + cost,
                Event::TrainComplete { node: i as u32 },
            );
        }
        while let Some((t, ev)) = self.queue.pop() {
            self.stats.events += 1;
            let Event::TrainComplete { node } = ev else {
                // lint:allow(no_panic, "phase invariant: the queue was empty at phase start and only TrainComplete was pushed")
                unreachable!("compute phase only schedules completions")
            };
            self.completions[node as usize] = t;
            latest_completion = latest_completion.max(t);
        }

        // Message propagation over the round's effective edges: each
        // present sender's message departs at its completion tick and
        // arrives after the link latency.
        let lseed = derive_seed(self.seed, LATENCY_STREAM);
        // reserve for the graph's full edge census (not this round's
        // presence-filtered arrivals): a later round with a record
        // presence count must never reallocate the late-edge buffer
        let worst_edges: usize = (0..n).map(|i| mixing.row(i).len().saturating_sub(1)).sum();
        for i in 0..n {
            if !self.present[i] {
                continue;
            }
            for &(j, _) in mixing.row(i) {
                let src = j as usize;
                if src == i || !self.present[src] {
                    continue;
                }
                let arrival =
                    self.completions[src] + self.latency.link_ticks(lseed, round_u, src, i);
                self.queue.push(
                    arrival,
                    Event::MessageArrive {
                        src: j,
                        dst: i as u32,
                    },
                );
            }
        }
        let deadline = match self.semantics {
            RoundSemantics::Barrier => u64::MAX,
            RoundSemantics::Deadline { slack_ticks } => {
                latest_completion.saturating_add(slack_ticks)
            }
        };
        self.late.clear();
        self.late.reserve(worst_edges);
        let mut round_end = latest_completion;
        let mut any_late = false;
        while let Some((t, ev)) = self.queue.pop() {
            self.stats.events += 1;
            let Event::MessageArrive { src, dst } = ev else {
                // lint:allow(no_panic, "phase invariant: the queue was empty at phase start and only MessageArrive was pushed")
                unreachable!("propagation phase only schedules arrivals")
            };
            if t > deadline {
                self.late.push((src, dst));
                self.stats.late_messages += 1;
                any_late = true;
            } else {
                round_end = round_end.max(t);
            }
        }
        // A deadline round that actually timed anyone out ran its full
        // grace period; otherwise the round closes at the last arrival.
        if any_late {
            round_end = deadline;
        }
        self.late.sort_unstable();

        // Eval tick closes the round; every present node waited at the
        // barrier/deadline, so their clocks resynchronize here. Absent
        // clocks stay frozen.
        self.queue.push(round_end, Event::EvalTick);
        // lint:allow(no_panic, "provably infallible: the eval tick was pushed on the line above")
        let (t, _) = self.queue.pop().expect("eval tick just scheduled");
        self.stats.events += 1;
        self.now = t;
        for (clock, &on) in self.clocks.iter_mut().zip(&self.present) {
            if on {
                *clock = t;
            }
        }
    }

    /// Materializes the presence-gated actions and the presence-masked
    /// effective mixing for the executor's slow path (some node absent or
    /// some edge late). Reuses internal buffers; allocation-free at
    /// steady state.
    pub(crate) fn compose_gating(&mut self, actions: &[RoundAction], mixing: &MixingMatrix) {
        self.gated.clear();
        self.gated
            .extend(actions.iter().zip(&self.present).map(|(&a, &on)| {
                if on {
                    a
                } else {
                    RoundAction::SyncOnly
                }
            }));
        mixing.masked_into(&self.present, &mut self.masked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiptrain_topology::{Graph, MixingMatrix};

    fn ring_mixing(n: usize) -> MixingMatrix {
        MixingMatrix::metropolis_hastings(&Graph::ring(n))
    }

    #[test]
    fn queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(5, Event::EvalTick);
        q.push(3, Event::TrainComplete { node: 1 });
        q.push(3, Event::TrainComplete { node: 0 });
        q.push(4, Event::PolicyTick);
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop(), Some((3, Event::TrainComplete { node: 1 })));
        assert_eq!(q.pop(), Some((3, Event::TrainComplete { node: 0 })));
        assert_eq!(q.pop(), Some((4, Event::PolicyTick)));
        assert_eq!(q.pop(), Some((5, Event::EvalTick)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn straggler_draws_are_deterministic_and_bounded() {
        let p = ComputeProfile::StragglerTail {
            tail_prob: 0.25,
            tail_factor: 4.0,
        };
        let mut stragglers = 0;
        for round in 0..50u64 {
            for node in 0..16 {
                let a = p.train_ticks(9, round, node, BASE_TRAIN_TICKS);
                let b = p.train_ticks(9, round, node, BASE_TRAIN_TICKS);
                assert_eq!(a, b, "same (seed, round, node) must redraw identically");
                assert!(a == BASE_TRAIN_TICKS || a == 4 * BASE_TRAIN_TICKS);
                if a > BASE_TRAIN_TICKS {
                    stragglers += 1;
                }
            }
        }
        // 25% tail over 800 draws: loose two-sided sanity band
        assert!((100..300).contains(&stragglers), "got {stragglers}");
    }

    #[test]
    fn seeded_latency_is_deterministic_and_stays_in_the_jitter_band() {
        let l = LatencyModel::Seeded {
            mean_ticks: 1000,
            jitter: 0.5,
        };
        for round in 0..20u64 {
            let a = l.link_ticks(7, round, 2, 5);
            assert_eq!(a, l.link_ticks(7, round, 2, 5));
            assert!((500..=1500).contains(&a), "got {a}");
        }
        // directed edges draw independently
        assert_ne!(
            (0..20u64).map(|r| l.link_ticks(7, r, 2, 5)).sum::<u64>(),
            (0..20u64).map(|r| l.link_ticks(7, r, 5, 2)).sum::<u64>(),
        );
    }

    #[test]
    fn barrier_rounds_have_no_late_edges_and_advance_time() {
        let n = 8;
        let mixing = ring_mixing(n);
        let actions = vec![RoundAction::Train; n];
        let mut e = EventEngine::new(
            n,
            3,
            ComputeProfile::StragglerTail {
                tail_prob: 0.3,
                tail_factor: 5.0,
            },
            LatencyModel::Constant { ticks: 250_000 },
            None,
            RoundSemantics::Barrier,
        );
        for round in 0..10 {
            e.begin_round(round, &actions, &mixing);
            assert!(e.late_edges().is_empty());
            assert!(e.all_present());
        }
        // ≥ 10 training rounds + latency of virtual time elapsed
        assert!(e.now() >= 10 * BASE_TRAIN_TICKS + 250_000);
    }

    #[test]
    fn deadline_rounds_mark_slow_senders_late() {
        let n = 6;
        let mixing = ring_mixing(n);
        let actions = vec![RoundAction::Train; n];
        // node 0 is 3× slower than the rest; the deadline is one quarter
        // round after the *fastest cohort* — wait, after the slowest — so
        // nothing can be late from compute alone. Use latency to push
        // node 0's outgoing messages past the deadline instead: every
        // link delays by more than the slack.
        let mut e = EventEngine::new(
            n,
            11,
            ComputeProfile::Homogeneous,
            LatencyModel::Constant {
                ticks: BASE_TRAIN_TICKS / 2,
            },
            None,
            RoundSemantics::Deadline {
                slack_ticks: BASE_TRAIN_TICKS / 4,
            },
        );
        e.begin_round(0, &actions, &mixing);
        // every edge's arrival (completion + half round) exceeds the
        // deadline (completion + quarter round): all 2n ring edges late
        assert_eq!(e.late_edges().len(), 2 * n);
        assert!(e.late_edges().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(e.stats().late_messages, 2 * n as u64);
    }

    #[test]
    fn churn_draws_are_deterministic_and_freeze_absent_clocks() {
        let n = 10;
        let mixing = ring_mixing(n);
        let actions = vec![RoundAction::Train; n];
        let build = || {
            EventEngine::new(
                n,
                21,
                ComputeProfile::Homogeneous,
                LatencyModel::Zero,
                Some(ChurnModel {
                    leave_prob: 0.3,
                    rejoin_prob: 0.4,
                }),
                RoundSemantics::Barrier,
            )
        };
        let mut a = build();
        let mut b = build();
        let mut saw_absent = false;
        for round in 0..20 {
            a.begin_round(round, &actions, &mixing);
            b.begin_round(round, &actions, &mixing);
            assert_eq!(a.present(), b.present());
            saw_absent |= !a.all_present();
        }
        assert!(saw_absent, "30% churn over 20 rounds should evict someone");
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().leaves > 0 && a.stats().joins > 0);
    }

    #[test]
    fn gating_demotes_absent_nodes_and_masks_their_rows() {
        let n = 5;
        let mixing = ring_mixing(n);
        let actions = vec![RoundAction::Train; n];
        let mut e = EventEngine::new(
            n,
            1,
            ComputeProfile::Homogeneous,
            LatencyModel::Zero,
            // leave_prob 1: everyone departs at the first policy tick
            Some(ChurnModel {
                leave_prob: 1.0,
                rejoin_prob: 0.0,
            }),
            RoundSemantics::Barrier,
        );
        e.begin_round(0, &actions, &mixing);
        assert!(e.present().iter().all(|&p| !p));
        e.compose_gating(&actions, &mixing);
        assert!(e.gated.iter().all(|&a| a == RoundAction::SyncOnly));
        for i in 0..n {
            assert_eq!(e.masked.row(i), &[(i as u32, 1.0)]);
        }
    }

    #[test]
    fn lockstep_engine_advances_one_base_round_per_round() {
        let n = 4;
        let mixing = ring_mixing(n);
        let actions = vec![RoundAction::Train; n];
        let mut e = EventEngine::lockstep(n, 42);
        for round in 0..7 {
            e.begin_round(round, &actions, &mixing);
        }
        assert_eq!(e.now(), 7 * BASE_TRAIN_TICKS);
        let mut sync = EventEngine::lockstep(n, 42);
        sync.begin_round(0, &[RoundAction::SyncOnly; 4], &mixing);
        assert_eq!(sync.now(), 0, "sync-only rounds cost zero compute ticks");
    }
}
