//! Typed round-execution errors.
//!
//! `run_round_with_mixing` used to `assert!` on size mismatches, so one
//! bad scheduled graph inside a parallel campaign aborted the whole
//! process. The `try_` round APIs report the mismatch as an
//! [`EngineError`] instead, letting drivers fail a single cell with a
//! diagnosable reason.

/// Why a round could not be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `actions.len()` differs from the node count.
    ActionArityMismatch {
        /// Nodes in the simulation.
        expected: usize,
        /// Actions supplied.
        got: usize,
    },
    /// A mixing-matrix override's size differs from the node count (e.g. a
    /// scheduled graph generated for the wrong fleet).
    MixingSizeMismatch {
        /// Nodes in the simulation.
        expected: usize,
        /// Rows in the supplied matrix.
        got: usize,
    },
    /// An [`EventEngine`](crate::events::EventEngine) built for a
    /// different fleet size was handed to
    /// [`Simulation::try_run_round_event`](crate::executor::Simulation::try_run_round_event).
    EventEngineSizeMismatch {
        /// Nodes in the simulation.
        expected: usize,
        /// Nodes the event engine tracks.
        got: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ActionArityMismatch { expected, got } => write!(
                f,
                "one action per node required: simulation has {expected} nodes, got {got} actions"
            ),
            EngineError::MixingSizeMismatch { expected, got } => write!(
                f,
                "mixing matrix size mismatch: simulation has {expected} nodes, matrix has {got}"
            ),
            EngineError::EventEngineSizeMismatch { expected, got } => write!(
                f,
                "event engine size mismatch: simulation has {expected} nodes, engine tracks {got}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_counts() {
        let e = EngineError::MixingSizeMismatch {
            expected: 8,
            got: 6,
        };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains('6'));
        let e = EngineError::ActionArityMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("action"));
    }
}
