//! Event-driven decentralized-learning execution engine.
//!
//! This crate is the DecentralizePy substitute: it owns the round
//! mechanics every algorithm in the paper shares, layered on a
//! discrete-event core ([`events`]) so that synchronous D-PSGD/SkipTrain
//! and asynchronous gossip are two *schedules compiled onto one engine*
//! rather than two loops.
//!
//! # The event core
//!
//! [`events::EventEngine`] owns a deterministic priority queue
//! ([`events::EventQueue`], keyed by `(time, seq)` so ties pop in push
//! order), per-node virtual clocks, and three timing models:
//! a [`events::ComputeProfile`] (homogeneous, per-node speed factors, or
//! a seeded straggler tail), a [`events::LatencyModel`] (zero, constant,
//! or seeded per-link jitter), and an optional [`events::ChurnModel`]
//! (seeded per-round leave/rejoin; absent nodes cost nothing). Each round
//! it plays the typed events — `PolicyTick` → churn `Join`/`Leave`,
//! `TrainComplete` per node, `MessageArrive` per effective edge,
//! `EvalTick` — and tells the executor which nodes are present and which
//! edges *missed the round deadline*.
//!
//! Under **barrier** semantics (the synchronous runner) the round waits
//! for every message: stragglers and latency stretch virtual time but
//! never change which messages aggregate, so the event path reproduces
//! the legacy lockstep loop bit for bit. Under **deadline** semantics
//! (async gossip) a message arriving after the slack window is a *late
//! edge*, treated exactly like a transport drop: the sender's transmit
//! energy is still charged, no receive is charged, the mixing weight
//! folds back into the receiver's self weight, and error-feedback
//! replicas do not advance.
//!
//! # The round phases
//!
//! However a round was timed, its data path is the same four phases:
//!
//! 1. **local compute** — each node either trains `E` local SGD steps on its
//!    private dataset (a *training* round) or leaves its model untouched
//!    (a *synchronization* round), producing the half-step model `x^{t−½}`;
//! 2. **share** — every node on an effective communication edge (an
//!    off-diagonal entry of the round's mixing matrix, which may be a
//!    pairwise-gossip override) sends `x^{t−½}` through a
//!    [`transport`](transport::TransportKind) (zero-copy in-memory or full
//!    serialize/decode with optional loss), compressed by the
//!    [`ModelCodec`](transport::ModelCodec) the configured
//!    [`CompressionPolicy`](transport::CompressionPolicy) resolves for
//!    that directed link this round — optionally with per-link
//!    CHOCO-SGD error feedback
//!    ([`ErrorFeedbackState`](transport::ErrorFeedbackState)), which
//!    compresses each directed edge's accumulated residual against a link
//!    replica instead of the raw model at identical wire bytes;
//! 3. **aggregate** — every node computes `x^t = Σ_j W_ji · x_j^{t−½}`
//!    with its Metropolis–Hastings row, over the lossily reconstructed
//!    neighbor models (late or dropped edges fall back to the receiver's
//!    own model), then applies the consensus stepsize:
//!    `x^t = x^{t−½} + γ (Σ_j W_ji · x_j^{t−½} − x^{t−½})` with γ = 1
//!    by default;
//! 4. **account** — the energy ledger records one tx event per attempted
//!    message and one rx event per delivered, on-time message, at the
//!    codec's actual wire bytes, over exactly the edges that fired —
//!    and stamps the round's virtual end tick when an event engine is
//!    driving ([`EnergyLedger::round_end_ticks`](skiptrain_energy::EnergyLedger::round_end_ticks)).
//!
//! Which of train/sync each node performs per round is decided by the
//! *policies* in `skiptrain-core`; the engine is policy-agnostic and simply
//! executes [`RoundAction`](executor::RoundAction)s. Nodes execute in
//! parallel with rayon; the event layer is serial and all randomness is
//! derived from per-node seeded streams, so results are independent of
//! the thread count.
//!
//! When a [`BatterySetup`](skiptrain_energy::battery::BatterySetup) is
//! configured on the [`SimulationConfig`](executor::SimulationConfig), a
//! battery prologue runs before step 1 and an epilogue after step 4: each
//! node's battery recharges from its harvest trace, the participation
//! policy (fleet-wide or per-node heterogeneous) decides from charge
//! fractions which nodes take part, intended actions are gated (a gated
//! node neither trains nor fires its edges — its mixing row collapses to
//! identity via
//! [`MixingMatrix::masked_into`](skiptrain_topology::MixingMatrix::masked_into),
//! so comm accounting stays byte-accurate over exactly the surviving
//! edges), and the ledger's actual per-node spend of the round is drained
//! from the batteries. A node that intends to train but cannot afford the
//! round browns out: its remaining charge is burned and it sits the round
//! out. Churn gating composes with battery gating: an absent node's row
//! is masked first, then the battery masks what remains.
//!
//! Drivers hook into the round loop through
//! [`RoundObserver`](observer::RoundObserver) callbacks (round start/end,
//! periodic evaluation) — curve recording, energy streaming, and early
//! stopping are [`observer`] implementations rather than executor
//! concerns. Per-node datasets sit behind `Arc` so many simulations can
//! share one materialized dataset (see
//! [`Simulation::with_shared_data`](executor::Simulation::with_shared_data)).

pub mod error;
pub mod eval;
pub mod events;
pub mod executor;
pub mod metrics;
pub mod node;
pub mod observer;
pub mod transport;

pub use error::EngineError;
pub use events::{
    ChurnModel, ComputeProfile, Event, EventEngine, EventQueue, EventStats, LatencyModel,
    RoundSemantics, BASE_TRAIN_TICKS,
};
pub use executor::{RoundAction, Simulation, SimulationConfig};
pub use metrics::{AccuracyPoint, EvalStats, MetricsRecorder};
pub use observer::{
    BatteryObserver, BatteryRound, CurveObserver, EarlyStop, EnergyTraceObserver, EvalReport,
    MeanModelObserver, RoundCtx, RoundObserver, RoundReport,
};
pub use transport::{
    rarity_k, tier_codec, CompressionPolicy, DecodeScratch, EncodeScratch, EnergyTier,
    ErrorFeedbackState, LinkCodec, ModelCodec, TransportKind, DEFAULT_REPLICA_CAP,
};
