//! Synchronous decentralized-learning execution engine.
//!
//! This crate is the DecentralizePy substitute: it owns the round loop
//! mechanics that every algorithm in the paper shares. A *round* consists of
//!
//! 1. **local compute** — each node either trains `E` local SGD steps on its
//!    private dataset (a *training* round) or leaves its model untouched
//!    (a *synchronization* round), producing the half-step model `x^{t−½}`;
//! 2. **share** — every node on an effective communication edge (an
//!    off-diagonal entry of the round's mixing matrix, which may be a
//!    pairwise-gossip override) sends `x^{t−½}` through a
//!    [`transport`](transport::TransportKind) (zero-copy in-memory or full
//!    serialize/decode with optional loss), compressed by the configured
//!    [`ModelCodec`](transport::ModelCodec) — optionally with per-link
//!    CHOCO-SGD error feedback
//!    ([`ErrorFeedbackState`](transport::ErrorFeedbackState)), which
//!    compresses each directed edge's accumulated residual against a link
//!    replica instead of the raw model at identical wire bytes;
//! 3. **aggregate** — every node computes `x^t = Σ_j W_ji · x_j^{t−½}`
//!    with its Metropolis–Hastings row, over the lossily reconstructed
//!    neighbor models;
//! 4. **account** — the energy ledger records one tx event per attempted
//!    message and one rx event per delivered message, at the codec's
//!    actual wire bytes, over exactly the edges that fired.
//!
//! Which of train/sync each node performs per round is decided by the
//! *policies* in `skiptrain-core`; the engine is policy-agnostic and simply
//! executes [`RoundAction`](executor::RoundAction)s. Nodes execute in
//! parallel with rayon; all randomness is derived from per-node seeded
//! streams so results are independent of the thread count.
//!
//! When a [`BatterySetup`](skiptrain_energy::battery::BatterySetup) is
//! configured on the [`SimulationConfig`](executor::SimulationConfig), a
//! battery prologue runs before step 1 and an epilogue after step 4: each
//! node's battery recharges from its harvest trace, the participation
//! policy decides from charge fractions which nodes take part, intended
//! actions are gated (a gated node neither trains nor fires its edges —
//! its mixing row collapses to identity via
//! [`MixingMatrix::masked_into`](skiptrain_topology::MixingMatrix::masked_into),
//! so comm accounting stays byte-accurate over exactly the surviving
//! edges), and the ledger's actual per-node spend of the round is drained
//! from the batteries. A node that intends to train but cannot afford the
//! round browns out: its remaining charge is burned and it sits the round
//! out.
//!
//! Drivers hook into the round loop through
//! [`RoundObserver`](observer::RoundObserver) callbacks (round start/end,
//! periodic evaluation) — curve recording, energy streaming, and early
//! stopping are [`observer`] implementations rather than executor
//! concerns. Per-node datasets sit behind `Arc` so many simulations can
//! share one materialized dataset (see
//! [`Simulation::with_shared_data`](executor::Simulation::with_shared_data)).

pub mod error;
pub mod eval;
pub mod executor;
pub mod metrics;
pub mod node;
pub mod observer;
pub mod transport;

pub use error::EngineError;
pub use executor::{RoundAction, Simulation, SimulationConfig};
pub use metrics::{AccuracyPoint, EvalStats, MetricsRecorder};
pub use observer::{
    BatteryObserver, BatteryRound, CurveObserver, EarlyStop, EnergyTraceObserver, EvalReport,
    MeanModelObserver, RoundCtx, RoundObserver, RoundReport,
};
pub use transport::{ErrorFeedbackState, ModelCodec, TransportKind, DEFAULT_REPLICA_CAP};
