//! Per-node training state.

use skiptrain_data::{Dataset, MinibatchSampler};
use skiptrain_linalg::Matrix;
use skiptrain_nn::sgd::SgdConfig;
use skiptrain_nn::{Sequential, Sgd, SoftmaxCrossEntropy};
use std::sync::Arc;

/// A simulated node: its model replica, private dataset, optimizer state
/// and reusable minibatch buffers.
///
/// The dataset sits behind an `Arc` so that many simulations (e.g. every
/// run of a [`Campaign`](https://docs.rs/skiptrain-core)) share one
/// materialized copy instead of deep-cloning per run.
pub struct Node {
    id: usize,
    model: Sequential,
    dataset: Arc<Dataset>,
    sampler: MinibatchSampler,
    sgd: Sgd,
    loss: SoftmaxCrossEntropy,
    // workhorse buffers reused across rounds
    batch_x: Matrix,
    batch_y: Vec<u32>,
    batch_idx: Vec<usize>,
    grad_logits: Matrix,
}

impl Node {
    /// Creates a node.
    ///
    /// # Panics
    /// Panics if the dataset is empty or its feature dimension does not
    /// match the model input.
    pub fn new(
        id: usize,
        model: Sequential,
        dataset: impl Into<Arc<Dataset>>,
        batch_size: usize,
        sgd: SgdConfig,
        seed: u64,
    ) -> Self {
        let dataset = dataset.into();
        assert!(!dataset.is_empty(), "node {id}: empty dataset");
        assert_eq!(
            dataset.feature_dim(),
            model.input_dim(),
            "node {id}: dataset dim does not match model input"
        );
        let sampler = MinibatchSampler::new(
            dataset.len(),
            batch_size,
            skiptrain_linalg::rng::derive_seed(seed, id as u64),
        );
        let loss = SoftmaxCrossEntropy::new(model.output_dim());
        Self {
            id,
            model,
            dataset,
            sampler,
            sgd: Sgd::new(sgd),
            loss,
            batch_x: Matrix::zeros(0, 0),
            batch_y: Vec::new(),
            batch_idx: Vec::new(),
            grad_logits: Matrix::zeros(0, 0),
        }
    }

    /// Node id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's private dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The node's model replica (used by evaluation).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Runs `local_steps` SGD steps starting from `params_in`, writing the
    /// updated flat parameters to `params_out` (Lines 8–10 of Algorithm 2).
    /// Returns the mean training loss across the steps.
    pub fn train_local(
        &mut self,
        params_in: &[f32],
        local_steps: usize,
        params_out: &mut Vec<f32>,
    ) -> f32 {
        self.model.load_params(params_in);
        let mut loss_sum = 0.0f64;
        for _ in 0..local_steps {
            self.sampler.sample_into(&mut self.batch_idx);
            self.dataset
                .gather_batch(&self.batch_idx, &mut self.batch_x, &mut self.batch_y);
            self.model.zero_grads();
            let loss_value = {
                let logits = self.model.forward(&self.batch_x, true);
                self.loss
                    .loss_and_grad(logits, &self.batch_y, &mut self.grad_logits)
            };
            self.model.backward(&self.grad_logits);
            self.sgd.step(&mut self.model);
            loss_sum += loss_value as f64;
        }
        self.model.copy_params_to(params_out);
        (loss_sum / local_steps.max(1) as f64) as f32
    }

    /// Evaluates accuracy and loss of `params` on the given samples.
    pub fn evaluate(&mut self, params: &[f32], features: &Matrix, labels: &[u32]) -> (f32, f32) {
        self.model.load_params(params);
        let logits = self.model.forward(features, false);
        let acc = skiptrain_nn::loss::accuracy(logits, labels);
        let loss = self.loss.loss(logits, labels);
        (acc, loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skiptrain_data::synth::{MixtureSpec, MixtureTask};

    fn small_node(seed: u64) -> (Node, Vec<f32>) {
        let spec = MixtureSpec {
            num_classes: 3,
            feature_dim: 8,
            modes_per_class: 1,
            separation: 2.0,
            noise: 0.4,
        };
        let task = MixtureTask::new(spec, 7);
        let data = task.sample(120, 1);
        let model = skiptrain_nn::zoo::mlp(&[8, 16, 3], seed);
        let params = model.flat_params();
        (
            Node::new(0, model, data, 16, SgdConfig::plain(0.1), seed),
            params,
        )
    }

    #[test]
    fn local_training_reduces_loss() {
        let (mut node, params) = small_node(1);
        let mut out1 = Vec::new();
        let first_loss = node.train_local(&params, 5, &mut out1);
        let mut out2 = Vec::new();
        let later_loss = node.train_local(&out1, 25, &mut out2);
        assert!(
            later_loss < first_loss,
            "loss did not go down: {first_loss} -> {later_loss}"
        );
    }

    #[test]
    fn train_local_changes_params() {
        let (mut node, params) = small_node(2);
        let mut out = Vec::new();
        node.train_local(&params, 1, &mut out);
        assert_eq!(out.len(), params.len());
        assert_ne!(out, params);
    }

    #[test]
    fn training_improves_local_accuracy() {
        let (mut node, params) = small_node(3);
        let features = node.dataset().features().clone();
        let labels = node.dataset().labels().to_vec();
        let (acc_before, _) = node.evaluate(&params, &features, &labels);
        let mut trained = Vec::new();
        node.train_local(&params, 60, &mut trained);
        let (acc_after, _) = node.evaluate(&trained, &features, &labels);
        assert!(
            acc_after > acc_before + 0.2,
            "training should lift local accuracy: {acc_before} -> {acc_after}"
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (mut a, params) = small_node(4);
        let (mut b, _) = small_node(4);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        a.train_local(&params, 3, &mut out_a);
        b.train_local(&params, 3, &mut out_b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_dataset() {
        let model = skiptrain_nn::zoo::mlp(&[4, 2], 1);
        let empty = Dataset::empty(4, 2);
        let _ = Node::new(0, model, empty, 8, SgdConfig::plain(0.1), 1);
    }
}
