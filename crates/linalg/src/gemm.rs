//! Matrix multiplication kernels.
//!
//! Backpropagation through dense layers needs three product shapes:
//!
//! * `C = A · B`       — forward pass (activations × weights),
//! * `C = Aᵀ · B`      — weight gradients (inputs × output gradients),
//! * `C = A · Bᵀ`      — input gradients (output gradients × weights).
//!
//! Each has a dedicated entry point so no explicit transpose is ever
//! materialized by callers. The primitive kernels operate on plain
//! row-major slices ([`gemm_into`], [`gemm_at_b_into`], [`gemm_a_bt_into`])
//! so that callers storing parameters in packed buffers (the NN layers)
//! multiply without any copies; [`Matrix`] wrappers are provided on top.
//!
//! # Blocked kernel design
//!
//! All three shapes funnel into one cache-blocked, register-tiled driver:
//!
//! 1. **Pack once per multiply.** `B` is packed into [`NR`]-wide column
//!    panels (`k × NR` contiguous, zero-padded tail panel) and `A` into
//!    [`MR`]-row tiles (`k × MR` contiguous, zero-padded tail tile). The
//!    packed buffers live in thread-local scratch on the calling thread
//!    (workers only read them), so steady-state multiplies allocate
//!    nothing as long as the caller thread persists — true for serial
//!    callers and the main thread, but a multiply issued from inside a
//!    parallel region of the vendored spawn-per-op rayon runs on a fresh
//!    worker whose scratch starts empty (see ROADMAP: persistent worker
//!    pool). Packing normalizes both storage layouts (`Aᵀ·B` reads `A`
//!    columns, `A·Bᵀ` reads `B` rows), which is why one micro-kernel
//!    serves all three shapes.
//! 2. **4×8 register micro-kernel.** For each (row tile, column panel)
//!    pair, an `MR × NR` accumulator array is carried in registers across
//!    the whole `k` loop: per step, `MR` contiguous `A` values and `NR`
//!    contiguous `B` values feed `MR·NR` multiply–adds. `C` is written
//!    exactly once per element.
//! 3. **Deterministic accumulation.** Every output element is a single
//!    scalar chain over `p = 0..k` in order, so results are bit-identical
//!    regardless of tiling, thread count, or which parallel split ran —
//!    the workspace's determinism requirement.
//! 4. **Rayon over row blocks** for all three shapes once a multiply
//!    reaches [`PAR_FLOP_THRESHOLD`] multiply–adds. Skinny products
//!    (`m == 1`, e.g. single-sample inference over a huge weight matrix)
//!    parallelize over column panels instead, so FLOP-heavy multiplies
//!    are never serialized just because `m` is small.
//!
//! Multiplies under [`SMALL_FLOP_THRESHOLD`] skip packing entirely and run
//! simple streaming loops — at that size the pack traffic costs more than
//! register tiling saves.

use crate::matrix::Matrix;
use rayon::prelude::*;
use std::cell::RefCell;

/// Rows per register tile of the micro-kernel.
pub const MR: usize = 4;

/// Columns per register tile (and per packed `B` panel).
pub const NR: usize = 8;

/// Minimum multiply–add count (`m·n·k`) before a multiply is parallelized.
///
/// Below this, thread spawn/join overhead outweighs the parallel speedup
/// (measured with the `sgd_step` criterion bench). Gating on FLOPs rather
/// than output elements means a `1 × N` product over a huge inner
/// dimension still parallelizes (over column panels).
pub const PAR_FLOP_THRESHOLD: usize = 2 * 1024 * 1024;

/// Below this multiply–add count the packed path's pack traffic and
/// dispatch overhead beat its register-tiling gains; plain streaming loops
/// are used instead.
const SMALL_FLOP_THRESHOLD: usize = 8 * 1024;

thread_local! {
    /// Reusable pack buffer for `A` tiles (tile-major `k × MR` blocks).
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Reusable pack buffer for `B` panels (panel-major `k × NR` blocks).
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Storage layout of the left operand.
#[derive(Clone, Copy)]
enum AStore<'a> {
    /// `m × k` row-major: C row `i` reads A row `i`.
    Rows(&'a [f32]),
    /// `k × m` row-major, logically transposed: C row `i` reads A column `i`.
    Cols(&'a [f32]),
}

/// Storage layout of the right operand.
#[derive(Clone, Copy)]
enum BStore<'a> {
    /// `k × n` row-major.
    Rows(&'a [f32]),
    /// `n × k` row-major, logically transposed.
    Cols(&'a [f32]),
}

/// Packs `A` into tile-major layout: tile `t` holds rows
/// `t·MR .. t·MR+MR` as `k` groups of `MR` contiguous values
/// (zero-padded when `m` is not a tile multiple).
fn pack_a(m: usize, k: usize, a: AStore, out: &mut Vec<f32>) {
    let tiles = m.div_ceil(MR);
    out.resize(tiles * k * MR, 0.0);
    for t in 0..tiles {
        let i0 = t * MR;
        let rows = MR.min(m - i0);
        let tile = &mut out[t * k * MR..(t + 1) * k * MR];
        match a {
            AStore::Rows(a) => {
                for ii in 0..rows {
                    let row = &a[(i0 + ii) * k..(i0 + ii + 1) * k];
                    for (p, &v) in row.iter().enumerate() {
                        tile[p * MR + ii] = v;
                    }
                }
            }
            AStore::Cols(a) => {
                for (p, dst) in tile.chunks_exact_mut(MR).enumerate() {
                    dst[..rows].copy_from_slice(&a[p * m + i0..p * m + i0 + rows]);
                }
            }
        }
        if rows < MR {
            for dst in tile.chunks_exact_mut(MR) {
                dst[rows..].fill(0.0);
            }
        }
    }
}

/// Packs `B` into panel-major layout: panel `jp` holds columns
/// `jp·NR .. jp·NR+NR` as `k` groups of `NR` contiguous values
/// (zero-padded when `n` is not a panel multiple).
fn pack_b(k: usize, n: usize, b: BStore, out: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    out.resize(panels * k * NR, 0.0);
    for jp in 0..panels {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        let panel = &mut out[jp * k * NR..(jp + 1) * k * NR];
        match b {
            BStore::Rows(b) => {
                for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    dst[..cols].copy_from_slice(&b[p * n + j0..p * n + j0 + cols]);
                }
            }
            BStore::Cols(b) => {
                for jj in 0..cols {
                    let row = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
                    for (p, &v) in row.iter().enumerate() {
                        panel[p * NR + jj] = v;
                    }
                }
            }
        }
        if cols < NR {
            for dst in panel.chunks_exact_mut(NR) {
                dst[cols..].fill(0.0);
            }
        }
    }
}

/// The 4×8 register micro-kernel: full-`k` product of one packed `A` tile
/// with one packed `B` panel. Each accumulator is one scalar chain over
/// `p = 0..k` in order (deterministic regardless of tiling or threads).
#[inline(always)]
fn micro_4x8(tile_a: &[f32], panel_b: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (pa, pb) in tile_a.chunks_exact(MR).zip(panel_b.chunks_exact(NR)) {
        for (acc_row, &a) in acc.iter_mut().zip(pa) {
            for (c, &b) in acc_row.iter_mut().zip(pb) {
                *c += a * b;
            }
        }
    }
    acc
}

/// Multiplies one packed `A` row tile against every `B` panel, writing (or
/// accumulating into) `rows` valid rows of `c_rows` (`rows × n`).
fn tile_row(
    k: usize,
    n: usize,
    tile_a: &[f32],
    bpack: &[f32],
    c_rows: &mut [f32],
    rows: usize,
    accumulate: bool,
) {
    for (jp, panel_b) in bpack.chunks_exact(k * NR).enumerate() {
        let acc = micro_4x8(tile_a, panel_b);
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        for (ii, acc_row) in acc.iter().enumerate().take(rows) {
            let dst = &mut c_rows[ii * n + j0..ii * n + j0 + cols];
            if accumulate {
                for (d, &v) in dst.iter_mut().zip(acc_row) {
                    *d += v;
                }
            } else {
                dst.copy_from_slice(&acc_row[..cols]);
            }
        }
    }
}

/// Skinny 1×8 variant for `m == 1`: the single `A` row is contiguous in
/// both layouts, so no `A` packing is needed, and parallelism goes over
/// column panels (each worker owns disjoint `C` columns).
fn gemv_row(
    k: usize,
    n: usize,
    a_row: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    accumulate: bool,
    parallel: bool,
) {
    let kernel = |panel_b: &[f32], dst: &mut [f32]| {
        let mut acc = [0.0f32; NR];
        for (&a, pb) in a_row.iter().zip(panel_b.chunks_exact(NR)) {
            for (c, &b) in acc.iter_mut().zip(pb) {
                *c += a * b;
            }
        }
        if accumulate {
            for (d, &v) in dst.iter_mut().zip(&acc) {
                *d += v;
            }
        } else {
            let cols = dst.len();
            dst.copy_from_slice(&acc[..cols]);
        }
    };
    let full = (n / NR) * NR;
    let (c_main, c_tail) = c.split_at_mut(full);
    if parallel && full > NR {
        c_main
            .par_chunks_exact_mut(NR)
            .zip(bpack.par_chunks_exact(k * NR))
            .for_each(|(dst, panel)| kernel(panel, dst));
    } else {
        for (dst, panel) in c_main.chunks_exact_mut(NR).zip(bpack.chunks_exact(k * NR)) {
            kernel(panel, dst);
        }
    }
    if n > full {
        kernel(&bpack[(n / NR) * k * NR..], c_tail);
    }
}

/// The blocked driver behind all three public kernels: packs both
/// operands, then runs the micro-kernel over row tiles — in parallel over
/// row blocks (or column panels when `m == 1`) once the multiply crosses
/// [`PAR_FLOP_THRESHOLD`].
fn blocked_gemm(
    m: usize,
    k: usize,
    n: usize,
    a: AStore<'_>,
    b: BStore<'_>,
    c: &mut [f32],
    accumulate: bool,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    let parallel = m * n * k >= PAR_FLOP_THRESHOLD;
    PACK_B.with(|pb| {
        let mut bpack = pb.borrow_mut();
        pack_b(k, n, b, &mut bpack);
        if m == 1 {
            let a_row = match a {
                AStore::Rows(a) => &a[..k],
                AStore::Cols(a) => &a[..k], // k×1 storage is also contiguous
            };
            gemv_row(k, n, a_row, &bpack, c, accumulate, parallel);
            return;
        }
        PACK_A.with(|pa| {
            let mut apack = pa.borrow_mut();
            pack_a(m, k, a, &mut apack);
            let tiles = m / MR;
            let (c_full, c_tail) = c.split_at_mut(tiles * MR * n);
            let bpack: &[f32] = &bpack;
            if parallel && tiles > 1 {
                c_full
                    .par_chunks_exact_mut(MR * n)
                    .zip(apack.par_chunks_exact(k * MR))
                    .for_each(|(c_rows, tile_a)| {
                        tile_row(k, n, tile_a, bpack, c_rows, MR, accumulate)
                    });
            } else {
                for (c_rows, tile_a) in c_full
                    .chunks_exact_mut(MR * n)
                    .zip(apack.chunks_exact(k * MR))
                {
                    tile_row(k, n, tile_a, bpack, c_rows, MR, accumulate);
                }
            }
            let tail_rows = m % MR;
            if tail_rows > 0 {
                tile_row(
                    k,
                    n,
                    &apack[tiles * k * MR..],
                    bpack,
                    c_tail,
                    tail_rows,
                    accumulate,
                );
            }
        });
    });
}

/// `C = A · B` on row-major slices: `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
///
/// # Panics
/// Panics if any slice length does not match its shape.
pub fn gemm_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_into: A length mismatch");
    assert_eq!(b.len(), k * n, "gemm_into: B length mismatch");
    assert_eq!(c.len(), m * n, "gemm_into: C length mismatch");

    if m * n * k <= SMALL_FLOP_THRESHOLD {
        // ikj order: for each a[i][p], stream b row p into c row i.
        for (c_row, a_row) in c.chunks_exact_mut(n).zip(a.chunks_exact(k)) {
            c_row.fill(0.0);
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_ip * b_v;
                }
            }
        }
    } else {
        blocked_gemm(m, k, n, AStore::Rows(a), BStore::Rows(b), c, false);
    }
}

/// `C += Aᵀ · B` on row-major slices: `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
///
/// Note this *accumulates* into `C` (the natural mode for gradient sums).
///
/// # Panics
/// Panics if any slice length does not match its shape.
pub fn gemm_at_b_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_at_b_into: A length mismatch");
    assert_eq!(b.len(), k * n, "gemm_at_b_into: B length mismatch");
    assert_eq!(c.len(), m * n, "gemm_at_b_into: C length mismatch");

    if m * n * k <= SMALL_FLOP_THRESHOLD {
        // For every sample p: c[i][j] += a[p][i] * b[p][j].
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n..(i + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_pi * b_v;
                }
            }
        }
    } else {
        blocked_gemm(m, k, n, AStore::Cols(a), BStore::Rows(b), c, true);
    }
}

/// `C = A · Bᵀ` on row-major slices: `A` is `m×k`, `B` is `n×k`, `C` is `m×n`.
///
/// # Panics
/// Panics if any slice length does not match its shape.
pub fn gemm_a_bt_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_a_bt_into: A length mismatch");
    assert_eq!(b.len(), n * k, "gemm_a_bt_into: B length mismatch");
    assert_eq!(c.len(), m * n, "gemm_a_bt_into: C length mismatch");

    if m * n * k <= SMALL_FLOP_THRESHOLD {
        for (c_row, a_row) in c.chunks_exact_mut(n).zip(a.chunks_exact(k)) {
            for (j, c_v) in c_row.iter_mut().enumerate() {
                *c_v = crate::ops::dot(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    } else {
        blocked_gemm(m, k, n, AStore::Rows(a), BStore::Cols(b), c, false);
    }
}

/// `C = A · B` where `A` is `m×k` and `B` is `k×n`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()` or if `C` is not `m×n`.
pub fn matmul(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul inner dimension mismatch: {k} vs {kb}");
    assert_eq!(c.shape(), (m, n), "matmul output shape mismatch");
    gemm_into(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
}

/// `C = Aᵀ · B` where `A` is `k×m` and `B` is `k×n` (so `C` is `m×n`).
///
/// Used for weight gradients: `dW = Xᵀ · dY`. Overwrites `C`.
///
/// # Panics
/// Panics if `A.rows() != B.rows()` or if `C` is not `m×n`.
pub fn matmul_at_b(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul_at_b inner dimension mismatch: {k} vs {kb}");
    assert_eq!(c.shape(), (m, n), "matmul_at_b output shape mismatch");
    c.fill_zero();
    gemm_at_b_into(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
}

/// `C = A · Bᵀ` where `A` is `m×k` and `B` is `n×k` (so `C` is `m×n`).
///
/// Used for input gradients: `dX = dY · Wᵀ`.
///
/// # Panics
/// Panics if `A.cols() != B.cols()` or if `C` is not `m×n`.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "matmul_a_bt inner dimension mismatch: {k} vs {kb}");
    assert_eq!(c.shape(), (m, n), "matmul_a_bt output shape mismatch");
    gemm_a_bt_into(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
}

/// Naive triple-loop reference used by tests and property checks.
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (_, n) = b.shape();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0f32..1.0))
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut c = Matrix::zeros(2, 2);
        matmul(&a, &b, &mut c);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = rand_matrix(5, 5, 42);
        let id = Matrix::identity(5);
        let mut c = Matrix::zeros(5, 5);
        matmul(&a, &id, &mut c);
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_matches_reference_rectangular() {
        let a = rand_matrix(7, 13, 1);
        let b = rand_matrix(13, 5, 2);
        let mut c = Matrix::zeros(7, 5);
        matmul(&a, &b, &mut c);
        assert!(c.max_abs_diff(&matmul_reference(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_reference() {
        // Large enough to cross PAR_FLOP_THRESHOLD.
        let a = rand_matrix(300, 40, 3);
        let b = rand_matrix(40, 300, 4);
        let mut c = Matrix::zeros(300, 300);
        matmul(&a, &b, &mut c);
        assert!(c.max_abs_diff(&matmul_reference(&a, &b)) < 1e-3);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = rand_matrix(9, 4, 5);
        let b = rand_matrix(9, 6, 6);
        let mut c = Matrix::zeros(4, 6);
        matmul_at_b(&a, &b, &mut c);
        assert!(c.max_abs_diff(&matmul_reference(&a.transposed(), &b)) < 1e-4);
    }

    #[test]
    fn at_b_slice_kernel_accumulates() {
        let a = rand_matrix(3, 2, 11);
        let b = rand_matrix(3, 4, 12);
        let reference = matmul_reference(&a.transposed(), &b);
        let mut c = vec![0.0f32; 8];
        gemm_at_b_into(2, 3, 4, a.as_slice(), b.as_slice(), &mut c);
        gemm_at_b_into(2, 3, 4, a.as_slice(), b.as_slice(), &mut c);
        for (got, want) in c.iter().zip(reference.as_slice()) {
            assert!((got - 2.0 * want).abs() < 1e-4, "accumulation failed");
        }
    }

    #[test]
    fn blocked_at_b_accumulates() {
        // Same accumulation contract on the blocked path (k·m·n above the
        // small-multiply threshold).
        let a = rand_matrix(40, 24, 13);
        let b = rand_matrix(40, 24, 14);
        let reference = matmul_reference(&a.transposed(), &b);
        let mut c = vec![0.0f32; 24 * 24];
        blocked_gemm(
            24,
            40,
            24,
            AStore::Cols(a.as_slice()),
            BStore::Rows(b.as_slice()),
            &mut c,
            true,
        );
        blocked_gemm(
            24,
            40,
            24,
            AStore::Cols(a.as_slice()),
            BStore::Rows(b.as_slice()),
            &mut c,
            true,
        );
        for (got, want) in c.iter().zip(reference.as_slice()) {
            assert!((got - 2.0 * want).abs() < 1e-3, "accumulation failed");
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = rand_matrix(8, 5, 7);
        let b = rand_matrix(3, 5, 8);
        let mut c = Matrix::zeros(8, 3);
        matmul_a_bt(&a, &b, &mut c);
        assert!(c.max_abs_diff(&matmul_reference(&a, &b.transposed())) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut c = Matrix::zeros(2, 3);
        matmul(&a, &b, &mut c);
    }

    /// Runs the blocked driver (bypassing the small-multiply fallback) for
    /// all three shapes and compares against the naive reference.
    fn check_blocked_all_shapes(m: usize, k: usize, n: usize, seed: u64) {
        let tol = 1e-3 * (1.0 + k as f32 / 8.0);

        // C = A·B
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed.wrapping_add(1));
        let mut c = vec![0.0f32; m * n];
        blocked_gemm(
            m,
            k,
            n,
            AStore::Rows(a.as_slice()),
            BStore::Rows(b.as_slice()),
            &mut c,
            false,
        );
        let reference = matmul_reference(&a, &b);
        for (got, want) in c.iter().zip(reference.as_slice()) {
            assert!(
                (got - want).abs() < tol,
                "gemm {m}x{k}x{n}: {got} vs {want}"
            );
        }

        // C = Aᵀ·B (A stored k×m)
        let at = rand_matrix(k, m, seed.wrapping_add(2));
        let mut c = vec![0.0f32; m * n];
        blocked_gemm(
            m,
            k,
            n,
            AStore::Cols(at.as_slice()),
            BStore::Rows(b.as_slice()),
            &mut c,
            true,
        );
        let reference = matmul_reference(&at.transposed(), &b);
        for (got, want) in c.iter().zip(reference.as_slice()) {
            assert!(
                (got - want).abs() < tol,
                "at_b {m}x{k}x{n}: {got} vs {want}"
            );
        }

        // C = A·Bᵀ (B stored n×k)
        let bt = rand_matrix(n, k, seed.wrapping_add(3));
        let mut c = vec![0.0f32; m * n];
        blocked_gemm(
            m,
            k,
            n,
            AStore::Rows(a.as_slice()),
            BStore::Cols(bt.as_slice()),
            &mut c,
            false,
        );
        let reference = matmul_reference(&a, &bt.transposed());
        for (got, want) in c.iter().zip(reference.as_slice()) {
            assert!(
                (got - want).abs() < tol,
                "a_bt {m}x{k}x{n}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn blocked_kernels_cover_tile_boundaries() {
        // Every combination of m/k/n straddling the MR (4) and NR (8) tile
        // edges, plus the degenerate size-1 axes.
        let edges = [1, MR - 1, MR, MR + 1, NR - 1, NR, NR + 1];
        for (s, &m) in edges.iter().enumerate() {
            for &k in &edges {
                for &n in &edges {
                    check_blocked_all_shapes(m, k, n, 100 + s as u64);
                }
            }
        }
    }

    #[test]
    fn blocked_parallel_is_bit_stable_across_thread_counts() {
        // 96·96·300 ≈ 2.8M flops crosses PAR_FLOP_THRESHOLD, so the row
        // blocks genuinely run under different split counts here; the fixed
        // per-element accumulation order must make every thread count
        // produce bit-identical output.
        let (m, k, n) = (96usize, 300usize, 96usize);
        assert!(m * n * k >= PAR_FLOP_THRESHOLD);
        let a = rand_matrix(m, k, 51);
        let b = rand_matrix(k, n, 52);
        let at = rand_matrix(k, m, 53);
        let bt = rand_matrix(n, k, 54);
        // skinny operands: 1×(k·m) by (k·m)×96 ≈ 2.8M flops, parallel too
        let b_skinny = rand_matrix(k * m, 96, 55);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut c1 = vec![0.0f32; m * n];
                gemm_into(m, k, n, a.as_slice(), b.as_slice(), &mut c1);
                let mut c2 = vec![0.0f32; m * n];
                gemm_at_b_into(m, k, n, at.as_slice(), b.as_slice(), &mut c2);
                let mut c3 = vec![0.0f32; m * n];
                gemm_a_bt_into(m, k, n, a.as_slice(), bt.as_slice(), &mut c3);
                // skinny shape: column-panel parallelism
                let mut c4 = vec![0.0f32; 96];
                gemm_into(1, k * m, 96, at.as_slice(), b_skinny.as_slice(), &mut c4);
                (c1, c2, c3, c4)
            })
        };
        let reference = run(1);
        for threads in [2, 3, 7] {
            let got = run(threads);
            assert!(
                bits(&reference.0) == bits(&got.0)
                    && bits(&reference.1) == bits(&got.1)
                    && bits(&reference.2) == bits(&got.2)
                    && bits(&reference.3) == bits(&got.3),
                "thread count {threads} changed kernel output bits"
            );
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn skinny_row_parallelizes_over_columns() {
        // The PAR_THRESHOLD regression: a 1×N product over a huge inner
        // dimension must take the parallel column-panel path and still
        // match the reference.
        let k = 60_000usize;
        let n = 64usize;
        assert!(k * n >= PAR_FLOP_THRESHOLD);
        let a = rand_matrix(1, k, 61);
        let b = rand_matrix(k, n, 62);
        let mut c = Matrix::zeros(1, n);
        matmul(&a, &b, &mut c);
        // block-summed reference in f64 to keep the tolerance meaningful
        for j in 0..n {
            let want: f64 = (0..k)
                .map(|p| a.as_slice()[p] as f64 * b[(p, j)] as f64)
                .sum();
            assert!(
                (c[(0, j)] as f64 - want).abs() < 0.3,
                "col {j}: {} vs {want}",
                c[(0, j)]
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matmul_matches_reference(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000
        ) {
            let a = rand_matrix(m, k, seed);
            let b = rand_matrix(k, n, seed.wrapping_add(1));
            let mut c = Matrix::zeros(m, n);
            matmul(&a, &b, &mut c);
            prop_assert!(c.max_abs_diff(&matmul_reference(&a, &b)) < 1e-3);
        }

        #[test]
        fn prop_transpose_kernels_agree(
            m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000
        ) {
            let a = rand_matrix(k, m, seed);
            let b = rand_matrix(k, n, seed.wrapping_add(9));
            let mut c1 = Matrix::zeros(m, n);
            matmul_at_b(&a, &b, &mut c1);
            let at = a.transposed();
            let mut c2 = Matrix::zeros(m, n);
            matmul(&at, &b, &mut c2);
            prop_assert!(c1.max_abs_diff(&c2) < 1e-3);
        }

        #[test]
        fn prop_a_bt_matches_reference(
            m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000
        ) {
            let a = rand_matrix(m, k, seed);
            let b = rand_matrix(n, k, seed.wrapping_add(17));
            let mut c = Matrix::zeros(m, n);
            matmul_a_bt(&a, &b, &mut c);
            prop_assert!(c.max_abs_diff(&matmul_reference(&a, &b.transposed())) < 1e-3);
        }

        #[test]
        fn prop_blocked_path_matches_reference_at_tile_edges(
            mi in 0usize..7, ki in 0usize..7, ni in 0usize..7, seed in 0u64..500
        ) {
            let edges = [1, MR - 1, MR, MR + 1, NR - 1, NR, NR + 1];
            check_blocked_all_shapes(edges[mi], edges[ki], edges[ni], seed);
        }
    }
}
