//! Matrix multiplication kernels.
//!
//! Backpropagation through dense layers needs three product shapes:
//!
//! * `C = A · B`       — forward pass (activations × weights),
//! * `C = Aᵀ · B`      — weight gradients (inputs × output gradients),
//! * `C = A · Bᵀ`      — input gradients (output gradients × weights).
//!
//! Each has a dedicated kernel so no explicit transpose materialization is
//! needed. The primitive kernels operate on plain row-major slices
//! ([`gemm_into`], [`gemm_at_b_into`], [`gemm_a_bt_into`]) so that callers
//! storing parameters in packed buffers (the NN layers) multiply without any
//! copies; [`Matrix`] wrappers are provided on top. All kernels use an
//! accumulation order whose inner loop runs over contiguous memory of both
//! the source and the destination, which lets LLVM vectorize them. Multiplies
//! with at least [`PAR_THRESHOLD`] output elements are parallelized over
//! output row blocks with rayon.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Minimum number of output elements before a multiply is parallelized.
///
/// Below this, rayon's scheduling overhead outweighs the parallel speedup
/// (measured with the `sgd_step` criterion bench).
pub const PAR_THRESHOLD: usize = 64 * 1024;

/// `C = A · B` on row-major slices: `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
///
/// # Panics
/// Panics if any slice length does not match its shape.
pub fn gemm_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_into: A length mismatch");
    assert_eq!(b.len(), k * n, "gemm_into: B length mismatch");
    assert_eq!(c.len(), m * n, "gemm_into: C length mismatch");

    let kernel = |a_row: &[f32], c_row: &mut [f32]| {
        c_row.fill(0.0);
        // ikj order: for each a[i][p], stream b row p into c row i.
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    };

    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_exact_mut(n)
            .zip(a.par_chunks_exact(k))
            .for_each(|(c_row, a_row)| kernel(a_row, c_row));
    } else {
        for (c_row, a_row) in c.chunks_exact_mut(n).zip(a.chunks_exact(k)) {
            kernel(a_row, c_row);
        }
    }
}

/// `C += Aᵀ · B` on row-major slices: `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
///
/// Note this *accumulates* into `C` (the natural mode for gradient sums).
///
/// # Panics
/// Panics if any slice length does not match its shape.
pub fn gemm_at_b_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_at_b_into: A length mismatch");
    assert_eq!(b.len(), k * n, "gemm_at_b_into: B length mismatch");
    assert_eq!(c.len(), m * n, "gemm_at_b_into: C length mismatch");

    // For every sample p: c[i][j] += a[p][i] * b[p][j]. Row p of both inputs
    // is contiguous, and c rows are streamed in the inner loop.
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_pi * b_v;
            }
        }
    }
}

/// `C = A · Bᵀ` on row-major slices: `A` is `m×k`, `B` is `n×k`, `C` is `m×n`.
///
/// The inner loop is a dot product of two contiguous rows.
///
/// # Panics
/// Panics if any slice length does not match its shape.
pub fn gemm_a_bt_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_a_bt_into: A length mismatch");
    assert_eq!(b.len(), n * k, "gemm_a_bt_into: B length mismatch");
    assert_eq!(c.len(), m * n, "gemm_a_bt_into: C length mismatch");

    let kernel = |a_row: &[f32], c_row: &mut [f32]| {
        for (j, c_v) in c_row.iter_mut().enumerate() {
            *c_v = crate::ops::dot(a_row, &b[j * k..(j + 1) * k]);
        }
    };

    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_exact_mut(n)
            .zip(a.par_chunks_exact(k))
            .for_each(|(c_row, a_row)| kernel(a_row, c_row));
    } else {
        for (c_row, a_row) in c.chunks_exact_mut(n).zip(a.chunks_exact(k)) {
            kernel(a_row, c_row);
        }
    }
}

/// `C = A · B` where `A` is `m×k` and `B` is `k×n`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()` or if `C` is not `m×n`.
pub fn matmul(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul inner dimension mismatch: {k} vs {kb}");
    assert_eq!(c.shape(), (m, n), "matmul output shape mismatch");
    gemm_into(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
}

/// `C = Aᵀ · B` where `A` is `k×m` and `B` is `k×n` (so `C` is `m×n`).
///
/// Used for weight gradients: `dW = Xᵀ · dY`. Overwrites `C`.
///
/// # Panics
/// Panics if `A.rows() != B.rows()` or if `C` is not `m×n`.
pub fn matmul_at_b(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "matmul_at_b inner dimension mismatch: {k} vs {kb}");
    assert_eq!(c.shape(), (m, n), "matmul_at_b output shape mismatch");
    c.fill_zero();
    gemm_at_b_into(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
}

/// `C = A · Bᵀ` where `A` is `m×k` and `B` is `n×k` (so `C` is `m×n`).
///
/// Used for input gradients: `dX = dY · Wᵀ`.
///
/// # Panics
/// Panics if `A.cols() != B.cols()` or if `C` is not `m×n`.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(k, kb, "matmul_a_bt inner dimension mismatch: {k} vs {kb}");
    assert_eq!(c.shape(), (m, n), "matmul_a_bt output shape mismatch");
    gemm_a_bt_into(m, k, n, a.as_slice(), b.as_slice(), c.as_mut_slice());
}

/// Naive triple-loop reference used by tests and property checks.
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (_, n) = b.shape();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0f32..1.0))
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut c = Matrix::zeros(2, 2);
        matmul(&a, &b, &mut c);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = rand_matrix(5, 5, 42);
        let id = Matrix::identity(5);
        let mut c = Matrix::zeros(5, 5);
        matmul(&a, &id, &mut c);
        assert!(c.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_matches_reference_rectangular() {
        let a = rand_matrix(7, 13, 1);
        let b = rand_matrix(13, 5, 2);
        let mut c = Matrix::zeros(7, 5);
        matmul(&a, &b, &mut c);
        assert!(c.max_abs_diff(&matmul_reference(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_reference() {
        // Large enough to cross PAR_THRESHOLD.
        let a = rand_matrix(300, 40, 3);
        let b = rand_matrix(40, 300, 4);
        let mut c = Matrix::zeros(300, 300);
        matmul(&a, &b, &mut c);
        assert!(c.max_abs_diff(&matmul_reference(&a, &b)) < 1e-3);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = rand_matrix(9, 4, 5);
        let b = rand_matrix(9, 6, 6);
        let mut c = Matrix::zeros(4, 6);
        matmul_at_b(&a, &b, &mut c);
        assert!(c.max_abs_diff(&matmul_reference(&a.transposed(), &b)) < 1e-4);
    }

    #[test]
    fn at_b_slice_kernel_accumulates() {
        let a = rand_matrix(3, 2, 11);
        let b = rand_matrix(3, 4, 12);
        let reference = matmul_reference(&a.transposed(), &b);
        let mut c = vec![0.0f32; 8];
        gemm_at_b_into(2, 3, 4, a.as_slice(), b.as_slice(), &mut c);
        gemm_at_b_into(2, 3, 4, a.as_slice(), b.as_slice(), &mut c);
        for (got, want) in c.iter().zip(reference.as_slice()) {
            assert!((got - 2.0 * want).abs() < 1e-4, "accumulation failed");
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = rand_matrix(8, 5, 7);
        let b = rand_matrix(3, 5, 8);
        let mut c = Matrix::zeros(8, 3);
        matmul_a_bt(&a, &b, &mut c);
        assert!(c.max_abs_diff(&matmul_reference(&a, &b.transposed())) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut c = Matrix::zeros(2, 3);
        matmul(&a, &b, &mut c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matmul_matches_reference(
            m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000
        ) {
            let a = rand_matrix(m, k, seed);
            let b = rand_matrix(k, n, seed.wrapping_add(1));
            let mut c = Matrix::zeros(m, n);
            matmul(&a, &b, &mut c);
            prop_assert!(c.max_abs_diff(&matmul_reference(&a, &b)) < 1e-3);
        }

        #[test]
        fn prop_transpose_kernels_agree(
            m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000
        ) {
            let a = rand_matrix(k, m, seed);
            let b = rand_matrix(k, n, seed.wrapping_add(9));
            let mut c1 = Matrix::zeros(m, n);
            matmul_at_b(&a, &b, &mut c1);
            let at = a.transposed();
            let mut c2 = Matrix::zeros(m, n);
            matmul(&at, &b, &mut c2);
            prop_assert!(c1.max_abs_diff(&c2) < 1e-3);
        }

        #[test]
        fn prop_a_bt_matches_reference(
            m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..1000
        ) {
            let a = rand_matrix(m, k, seed);
            let b = rand_matrix(n, k, seed.wrapping_add(17));
            let mut c = Matrix::zeros(m, n);
            matmul_a_bt(&a, &b, &mut c);
            prop_assert!(c.max_abs_diff(&matmul_reference(&a, &b.transposed())) < 1e-3);
        }
    }
}
