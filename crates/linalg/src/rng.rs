//! Deterministic random sampling helpers.
//!
//! The simulator requires reproducibility across runs *and* across thread
//! counts, so every random stream in the workspace is derived from explicit
//! 64-bit seeds via [`derive_seed`]; nothing ever touches a global RNG.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Derives an independent child seed from a parent seed and a stream index.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix — child
/// streams for different `(seed, stream)` pairs are uncorrelated in practice.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: a [`SmallRng`] for a derived stream.
#[inline]
pub fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(seed, stream))
}

/// Standard normal sampler using the Box–Muller transform.
///
/// `rand` alone only provides uniform sampling; rather than pulling in
/// `rand_distr`, the two-value Box–Muller recurrence is implemented here and
/// caches its spare value.
pub struct GaussianSampler {
    rng: SmallRng,
    spare: Option<f32>,
}

impl GaussianSampler {
    /// Creates a sampler from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Creates a sampler on a derived stream (see [`derive_seed`]).
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        Self {
            rng: stream_rng(seed, stream),
            spare: None,
        }
    }

    /// Draws one sample from `N(0, 1)`.
    pub fn sample(&mut self) -> f32 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Box–Muller: u1 in (0,1], u2 in [0,1)
        let u1: f32 = 1.0 - self.rng.random::<f32>();
        let u2: f32 = self.rng.random::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one sample from `N(mean, std²)`.
    #[inline]
    pub fn sample_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.sample()
    }

    /// Fills `out` with i.i.d. `N(0, 1)` samples.
    pub fn fill(&mut self, out: &mut [f32]) {
        for v in out {
            *v = self.sample();
        }
    }

    /// Access to the underlying uniform RNG (for mixed workloads).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::{mean, std_dev};

    #[test]
    fn derive_seed_differs_per_stream() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // deterministic
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut g = GaussianSampler::new(7);
        let xs: Vec<f32> = (0..20_000).map(|_| g.sample()).collect();
        assert!(mean(&xs).abs() < 0.03, "mean {} too far from 0", mean(&xs));
        assert!(
            (std_dev(&xs) - 1.0).abs() < 0.03,
            "std {} too far from 1",
            std_dev(&xs)
        );
    }

    #[test]
    fn gaussian_tail_mass_is_bounded() {
        let mut g = GaussianSampler::new(11);
        let beyond_3: usize = (0..50_000).filter(|_| g.sample().abs() > 3.0).count();
        // P(|Z| > 3) ≈ 0.27%; allow generous slack.
        assert!(beyond_3 < 500, "too many 3-sigma outliers: {beyond_3}");
    }

    #[test]
    fn sample_with_shifts_and_scales() {
        let mut g = GaussianSampler::new(13);
        let xs: Vec<f32> = (0..20_000).map(|_| g.sample_with(5.0, 2.0)).collect();
        assert!((mean(&xs) - 5.0).abs() < 0.06);
        assert!((std_dev(&xs) - 2.0).abs() < 0.06);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = GaussianSampler::for_stream(99, 3);
        let mut b = GaussianSampler::for_stream(99, 3);
        for _ in 0..100 {
            assert_eq!(a.sample().to_bits(), b.sample().to_bits());
        }
    }
}
