//! Fused vector kernels used on the hot paths of training and gossip
//! aggregation.
//!
//! All functions operate on plain slices so the callers (flattened model
//! parameter vectors, matrix buffers) never need to copy into a dedicated
//! type. Every kernel panics on length mismatch — in this codebase a length
//! mismatch is always a programming error, never a data error.

/// `y += alpha * x` (the BLAS `axpy`), the core of gossip aggregation.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * x` (scaled copy), used to start a weighted aggregation.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn scaled_copy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "scaled_copy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for v in x {
        *v *= alpha;
    }
}

/// Element-wise `y += x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn add_assign(x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "add_assign length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += xi;
    }
}

/// Element-wise `y -= x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn sub_assign(x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "sub_assign length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi -= xi;
    }
}

/// Dot product of two slices.
///
/// Accumulates in four independent lanes so the compiler can vectorize and
/// the result does not depend on auto-vectorization width.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = [0.0f32; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared Euclidean distance `‖x − y‖²`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn squared_distance(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "squared_distance length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// SGD update step: `w -= lr * g`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn sgd_step(lr: f32, grad: &[f32], weights: &mut [f32]) {
    axpy(-lr, grad, weights);
}

/// Linear interpolation `y = (1 - t) * y + t * x`, used by mixing ablations.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn lerp_assign(t: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "lerp_assign length mismatch");
    let s = 1.0 - t;
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = s * *yi + t * xi;
    }
}

/// Weighted sum of many equal-length vectors into `out`:
/// `out = Σ_k weights[k] * inputs[k]`.
///
/// This is the gossip-aggregation kernel (Line 8 of D-PSGD / Line 13 of
/// SkipTrain): node `i` computes `Σ_j W_ji · x_j` over its neighborhood.
/// The loop is ordered so that each input vector is streamed through exactly
/// once.
///
/// # Panics
/// Panics if `weights.len() != inputs.len()`, or if any input length differs
/// from `out.len()`.
pub fn weighted_sum_into(out: &mut [f32], inputs: &[&[f32]], weights: &[f32]) {
    assert_eq!(
        inputs.len(),
        weights.len(),
        "weighted_sum_into arity mismatch"
    );
    match inputs.first() {
        None => out.fill(0.0),
        Some(first) => {
            scaled_copy(weights[0], first, out);
            for (x, &w) in inputs.iter().zip(weights).skip(1) {
                axpy(w, x, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-5 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn axpy_matches_manual() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn scaled_copy_overwrites() {
        let x = [1.0, -2.0];
        let mut y = [9.0, 9.0];
        scaled_copy(0.5, &x, &mut y);
        assert_eq!(y, [0.5, -1.0]);
    }

    #[test]
    fn dot_handles_tails() {
        // length 7 exercises both the 4-lane body and the tail loop
        let x: Vec<f32> = (1..=7).map(|v| v as f32).collect();
        let y: Vec<f32> = (1..=7).map(|v| (v * 2) as f32).collect();
        let expected: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(close(dot(&x, &y), expected));
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm_of_unit_axis() {
        assert!(close(norm(&[0.0, 1.0, 0.0]), 1.0));
    }

    #[test]
    fn squared_distance_symmetry() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 3.0];
        assert!(close(squared_distance(&x, &y), squared_distance(&y, &x)));
        assert!(close(squared_distance(&x, &y), 25.0));
    }

    #[test]
    fn sgd_step_descends() {
        let mut w = [1.0, 1.0];
        sgd_step(0.1, &[1.0, -1.0], &mut w);
        assert_eq!(w, [0.9, 1.1]);
    }

    #[test]
    fn weighted_sum_matches_manual() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let c = [1.0, 1.0];
        let mut out = [0.0, 0.0];
        weighted_sum_into(&mut out, &[&a, &b, &c], &[0.5, 0.25, 0.25]);
        assert_eq!(out, [0.75, 0.5]);
    }

    #[test]
    fn weighted_sum_empty_inputs_zeroes_out() {
        let mut out = [3.0, 4.0];
        weighted_sum_into(&mut out, &[], &[]);
        assert_eq!(out, [0.0, 0.0]);
    }

    #[test]
    fn lerp_assign_endpoints() {
        let x = [2.0, 4.0];
        let mut y = [0.0, 0.0];
        lerp_assign(1.0, &x, &mut y);
        assert_eq!(y, [2.0, 4.0]);
        let mut y2 = [1.0, 1.0];
        lerp_assign(0.0, &x, &mut y2);
        assert_eq!(y2, [1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_mismatch() {
        let mut y = [0.0];
        axpy(1.0, &[1.0, 2.0], &mut y);
    }
}
