//! Fused vector kernels used on the hot paths of training and gossip
//! aggregation.
//!
//! All functions operate on plain slices so the callers (flattened model
//! parameter vectors, matrix buffers) never need to copy into a dedicated
//! type. Every kernel panics on length mismatch — in this codebase a length
//! mismatch is always a programming error, never a data error.

/// Accumulator-lane count of the reduction kernels ([`dot`]).
const LANES: usize = 8;

/// `y += alpha * x` (the BLAS `axpy`), the core of gossip aggregation.
///
/// Deliberately a plain element-wise loop: LLVM already emits full-width
/// vector code for it, and a hand-unrolled 8-lane variant measured *3×
/// slower* on the `gossip_mixing` bench (the chunked mutable iterator
/// blocks vectorization). Only reductions need explicit lanes.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * x` (scaled copy), used to start a weighted aggregation.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn scaled_copy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "scaled_copy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for v in x {
        *v *= alpha;
    }
}

/// Element-wise `y += x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn add_assign(x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "add_assign length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += xi;
    }
}

/// Element-wise `y -= x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn sub_assign(x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "sub_assign length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi -= xi;
    }
}

/// Dot product of two slices.
///
/// Accumulates in eight independent lanes so the compiler can vectorize
/// (two 4-wide or one 8-wide vector op per block) and the result does not
/// depend on auto-vectorization width. The lane combination order is
/// fixed, so the result is fully deterministic.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = [0.0f32; LANES];
    let full = x.len() - x.len() % LANES;
    for (xc, yc) in x[..full]
        .chunks_exact(LANES)
        .zip(y[..full].chunks_exact(LANES))
    {
        for ((a, &xi), &yi) in acc.iter_mut().zip(xc).zip(yc) {
            *a += xi * yi;
        }
    }
    let mut tail = 0.0f32;
    for (&xi, &yi) in x[full..].iter().zip(&y[full..]) {
        tail += xi * yi;
    }
    let quads = [
        (acc[0] + acc[1]) + (acc[2] + acc[3]),
        (acc[4] + acc[5]) + (acc[6] + acc[7]),
    ];
    quads[0] + quads[1] + tail
}

/// Squared Euclidean distance `‖x − y‖²`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn squared_distance(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "squared_distance length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// SGD update step: `w -= lr * g`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn sgd_step(lr: f32, grad: &[f32], weights: &mut [f32]) {
    axpy(-lr, grad, weights);
}

/// Linear interpolation `y = (1 - t) * y + t * x`, used by mixing ablations.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn lerp_assign(t: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "lerp_assign length mismatch");
    let s = 1.0 - t;
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = s * *yi + t * xi;
    }
}

/// Weighted sum of many equal-length vectors into `out`:
/// `out = Σ_k weights[k] * inputs[k]`.
///
/// This is the gossip-aggregation kernel (Line 8 of D-PSGD / Line 13 of
/// SkipTrain): node `i` computes `Σ_j W_ji · x_j` over its neighborhood.
/// The sum is cache-blocked (see [`weighted_sum_core`]): each
/// [`WSUM_CHUNK`]-sized span of `out` accumulates every input while the
/// span is hot in L1, so `out` makes one trip through memory instead of
/// one per input (the inputs are still each streamed through exactly
/// once). Per element, the accumulation order over inputs is identical to
/// the straightforward `scaled_copy` + `axpy` chain, so results are
/// unchanged.
///
/// # Panics
/// Panics if `weights.len() != inputs.len()`, or if any input length differs
/// from `out.len()`.
pub fn weighted_sum_into(out: &mut [f32], inputs: &[&[f32]], weights: &[f32]) {
    assert_eq!(
        inputs.len(),
        weights.len(),
        "weighted_sum_into arity mismatch"
    );
    weighted_sum_core(out, weights, |t| inputs[t]);
}

/// [`weighted_sum_into`] over an indexed family of vectors: for each `t`,
/// the summed vector is `fetch(indices[t])` with weight `weights[t]`.
///
/// This variant lets callers aggregate straight out of their own storage
/// (the executor's per-node neighbor models) without materializing a
/// `Vec<&[f32]>` per call — the allocation-free round-loop path.
///
/// # Panics
/// Panics if `indices.len() != weights.len()` or any fetched vector's
/// length differs from `out.len()`.
pub fn weighted_sum_indexed_into<'a, F>(out: &mut [f32], indices: &[u32], weights: &[f32], fetch: F)
where
    F: Fn(u32) -> &'a [f32],
{
    assert_eq!(
        indices.len(),
        weights.len(),
        "weighted_sum_indexed_into arity mismatch"
    );
    weighted_sum_core(out, weights, |t| fetch(indices[t]));
}

/// Cache-block size (in `f32`s) of the weighted-sum kernels: 8 KiB spans
/// keep the output block resident in L1 across all inputs.
const WSUM_CHUNK: usize = 2048;

/// Shared cache-blocked core of the weighted-sum kernels; `get(t)` is the
/// `t`-th summed vector. Each [`WSUM_CHUNK`]-sized span of `out` runs the
/// full `scaled_copy` + `axpy` chain while the span is hot in L1, so `out`
/// only makes one trip through memory however many inputs there are.
/// `axpy` is element-wise, so chunking cannot change the per-element
/// accumulation order (first input scaled, then added in order).
fn weighted_sum_core<'a, G>(out: &mut [f32], weights: &[f32], get: G)
where
    G: Fn(usize) -> &'a [f32],
{
    if weights.is_empty() {
        out.fill(0.0);
        return;
    }
    let n = out.len();
    for t in 0..weights.len() {
        assert_eq!(get(t).len(), n, "weighted_sum length mismatch");
    }
    let mut start = 0usize;
    while start < n {
        let end = (start + WSUM_CHUNK).min(n);
        let out_chunk = &mut out[start..end];
        scaled_copy(weights[0], &get(0)[start..end], out_chunk);
        for (t, &w) in weights.iter().enumerate().skip(1) {
            axpy(w, &get(t)[start..end], out_chunk);
        }
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-5 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn axpy_matches_manual() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn scaled_copy_overwrites() {
        let x = [1.0, -2.0];
        let mut y = [9.0, 9.0];
        scaled_copy(0.5, &x, &mut y);
        assert_eq!(y, [0.5, -1.0]);
    }

    #[test]
    fn dot_handles_tails() {
        // length 7 exercises both the 4-lane body and the tail loop
        let x: Vec<f32> = (1..=7).map(|v| v as f32).collect();
        let y: Vec<f32> = (1..=7).map(|v| (v * 2) as f32).collect();
        let expected: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(close(dot(&x, &y), expected));
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm_of_unit_axis() {
        assert!(close(norm(&[0.0, 1.0, 0.0]), 1.0));
    }

    #[test]
    fn squared_distance_symmetry() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 3.0];
        assert!(close(squared_distance(&x, &y), squared_distance(&y, &x)));
        assert!(close(squared_distance(&x, &y), 25.0));
    }

    #[test]
    fn sgd_step_descends() {
        let mut w = [1.0, 1.0];
        sgd_step(0.1, &[1.0, -1.0], &mut w);
        assert_eq!(w, [0.9, 1.1]);
    }

    #[test]
    fn weighted_sum_matches_manual() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let c = [1.0, 1.0];
        let mut out = [0.0, 0.0];
        weighted_sum_into(&mut out, &[&a, &b, &c], &[0.5, 0.25, 0.25]);
        assert_eq!(out, [0.75, 0.5]);
    }

    #[test]
    fn weighted_sum_empty_inputs_zeroes_out() {
        let mut out = [3.0, 4.0];
        weighted_sum_into(&mut out, &[], &[]);
        assert_eq!(out, [0.0, 0.0]);
    }

    #[test]
    fn weighted_sum_matches_scaled_copy_axpy_chain_bitwise() {
        // The register-blocked kernel must keep the legacy per-element
        // accumulation order (first input scaled, then axpy in order) —
        // length 21 exercises both the 8-wide blocks and the tail.
        let inputs: Vec<Vec<f32>> = (0..5)
            .map(|t| (0..21).map(|j| ((t * 31 + j) as f32).sin()).collect())
            .collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let weights = [0.3f32, 0.1, 0.25, 0.15, 0.2];
        let mut blocked = vec![0.0f32; 21];
        weighted_sum_into(&mut blocked, &refs, &weights);
        let mut chain = vec![0.0f32; 21];
        scaled_copy(weights[0], refs[0], &mut chain);
        for (x, &w) in refs.iter().zip(&weights).skip(1) {
            axpy(w, x, &mut chain);
        }
        for (b, c) in blocked.iter().zip(&chain) {
            assert_eq!(b.to_bits(), c.to_bits(), "accumulation order changed");
        }
    }

    #[test]
    fn weighted_sum_indexed_matches_direct() {
        let store: Vec<Vec<f32>> = (0..4)
            .map(|t| (0..10).map(|j| (t * 10 + j) as f32).collect())
            .collect();
        let indices = [2u32, 0, 3];
        let weights = [0.5f32, 0.25, 0.25];
        let mut indexed = vec![0.0f32; 10];
        weighted_sum_indexed_into(&mut indexed, &indices, &weights, |j| &store[j as usize]);
        let refs: Vec<&[f32]> = indices
            .iter()
            .map(|&j| store[j as usize].as_slice())
            .collect();
        let mut direct = vec![0.0f32; 10];
        weighted_sum_into(&mut direct, &refs, &weights);
        assert_eq!(indexed, direct);
    }

    #[test]
    fn weighted_sum_indexed_empty_zeroes_out() {
        let mut out = [5.0f32, 6.0];
        weighted_sum_indexed_into(&mut out, &[], &[], |_| &[]);
        assert_eq!(out, [0.0, 0.0]);
    }

    #[test]
    fn lerp_assign_endpoints() {
        let x = [2.0, 4.0];
        let mut y = [0.0, 0.0];
        lerp_assign(1.0, &x, &mut y);
        assert_eq!(y, [2.0, 4.0]);
        let mut y2 = [1.0, 1.0];
        lerp_assign(0.0, &x, &mut y2);
        assert_eq!(y2, [1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_mismatch() {
        let mut y = [0.0];
        axpy(1.0, &[1.0, 2.0], &mut y);
    }
}
