//! Dense `f32` linear-algebra kernels for the SkipTrain decentralized-learning
//! simulator.
//!
//! The neural-network substrate ([`skiptrain-nn`]), the synthetic dataset
//! generators and the gossip-aggregation kernels of the execution engine are
//! all built on the row-major [`Matrix`] type and the fused vector kernels in
//! [`ops`]. The design goals, in order:
//!
//! 1. **Correctness** — every kernel has a naive reference implementation and
//!    is tested against it (including property tests).
//! 2. **Cache-friendliness** — [`gemm`] uses an ikj loop order with row-major
//!    accumulation so the inner loop is a contiguous fused multiply-add; large
//!    multiplies are parallelized over row blocks with rayon.
//! 3. **Zero allocation on hot paths** — all kernels write into caller-provided
//!    buffers; the NN layers above keep workhorse buffers across rounds.
//!
//! This crate deliberately supports only what the reproduction needs: it is a
//! substrate, not a general-purpose BLAS.

pub mod compress;
pub mod gemm;
pub mod matrix;
pub mod ops;
pub mod reduce;
pub mod rng;

pub use gemm::{gemm_a_bt_into, gemm_at_b_into, gemm_into, matmul, matmul_a_bt, matmul_at_b};
pub use matrix::Matrix;
pub use rng::GaussianSampler;
