//! Row-major dense matrix of `f32`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f32` values.
///
/// `Matrix` is the storage type for neural-network weights and activations
/// (batch-major: one sample per row) as well as for the synthetic datasets.
/// It is intentionally minimal: shape-checked constructors, element access,
/// and slice views; the computational kernels live in [`crate::ops`] and
/// [`crate::gemm`].
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps an existing buffer as a `rows × cols` matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as contiguous slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies row `src` of `other` into row `dst` of `self`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn copy_row_from(&mut self, dst: usize, other: &Matrix, src: usize) {
        assert_eq!(self.cols, other.cols, "column mismatch in copy_row_from");
        self.row_mut(dst).copy_from_slice(other.row(src));
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes to `rows × cols` with all elements zeroed, reusing the
    /// existing storage when its capacity suffices — the
    /// allocation-free way to recycle one scratch matrix across shapes
    /// (the NN backward pass cycles two gradient buffers through every
    /// layer width each step).
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            let max_cols = 8;
            for c in 0..self.cols.min(max_cols) {
                write!(f, "{:+.4} ", self[(r, c)])?;
            }
            if self.cols > max_cols {
                write!(f, "...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn row_views_are_contiguous() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        let rows: Vec<_> = m.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(4, 7, |r, c| (r * 7 + c) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(3, 2)], m[(2, 3)]);
    }

    #[test]
    fn identity_is_diagonal() {
        let id = Matrix::identity(5);
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(id[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn copy_row_from_copies_exactly_one_row() {
        let src = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 + 1.0);
        let mut dst = Matrix::zeros(2, 3);
        dst.copy_row_from(1, &src, 0);
        assert_eq!(dst.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(dst.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_vec(1, 3, vec![3.0, 4.0, 0.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.5, 2.0, 1.0]);
        assert!((a.max_abs_diff(&b) - 2.0).abs() < 1e-6);
    }
}
