//! Lossy model-compression kernels: affine quantization and magnitude
//! (top-k) sparsification.
//!
//! These are the numeric primitives behind the engine's `ModelCodec`
//! transport layer. They are deliberately transport-agnostic: the engine
//! decides how codes travel on the wire; this module only defines the
//! value ↔ code maps and their reconstruction error contracts:
//!
//! * **Affine quantization** maps a tensor to `levels` evenly spaced codes
//!   over `[min, max]`; reconstruction error is bounded by half a step,
//!   `|x − dequant(quant(x))| ≤ scale / 2` (plus f32 rounding).
//! * **Top-k selection** returns the indices of the `k` largest-magnitude
//!   entries (deterministic tie-break: lower index wins), sorted ascending
//!   so downstream scatter kernels stream through memory in order.

/// Affine (asymmetric) quantization parameters for one tensor:
/// `value ≈ min + scale · code`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineParams {
    /// Reconstruction offset (the tensor minimum).
    pub min: f32,
    /// Reconstruction step between adjacent codes.
    pub scale: f32,
}

/// Computes affine parameters for quantizing `src` to `levels` codes
/// (`levels ≥ 2`). A constant tensor gets `scale = 0` so every code
/// reconstructs exactly to the constant.
///
/// Non-finite entries are ignored when fitting the range (and clamp to
/// its edges when encoded), so a numerically diverged model degrades the
/// reconstruction instead of aborting the run.
///
/// # Panics
/// Panics if `levels < 2`.
pub fn affine_params(src: &[f32], levels: u32) -> AffineParams {
    assert!(levels >= 2, "affine quantization needs at least 2 levels");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in src {
        if v.is_finite() {
            lo = lo.min(v as f64);
            hi = hi.max(v as f64);
        }
    }
    // lo >= hi covers empty/constant/all-non-finite inputs (lo = +∞ then)
    if lo >= hi {
        return AffineParams {
            min: if lo.is_finite() { lo as f32 } else { 0.0 },
            scale: 0.0,
        };
    }
    // the range is computed in f64 (hi − lo can exceed f32::MAX when both
    // extremes are near ±f32::MAX) and the step clamped finite, so extreme
    // models degrade in precision rather than dequantizing to NaN
    AffineParams {
        min: lo as f32,
        scale: (((hi - lo) / (levels - 1) as f64) as f32).min(f32::MAX),
    }
}

#[inline]
fn encode_one(v: f32, p: AffineParams, max_code: u32) -> u32 {
    if p.scale == 0.0 {
        return 0;
    }
    let code = ((v - p.min) / p.scale).round();
    // clamp handles f32 rounding at the range edges; NaN maps to code 0
    // and ±∞ saturate, so non-finite inputs cannot panic mid-round
    (code.max(0.0) as u32).min(max_code)
}

/// Quantizes `src` to `u8` codes (256 levels); returns the affine
/// parameters and one code per entry.
pub fn quantize_u8(src: &[f32]) -> (AffineParams, Vec<u8>) {
    let p = affine_params(src, 256);
    (
        p,
        src.iter().map(|&v| encode_one(v, p, 255) as u8).collect(),
    )
}

/// Quantizes `src` to `u16` codes (65 536 levels).
pub fn quantize_u16(src: &[f32]) -> (AffineParams, Vec<u16>) {
    let p = affine_params(src, 65_536);
    let codes = src
        .iter()
        .map(|&v| encode_one(v, p, 65_535) as u16)
        .collect();
    (p, codes)
}

/// Reconstructs one value from its affine code. The multiply-add runs in
/// f64 — `scale · code` alone can exceed `f32::MAX` for extreme-range
/// tensors even though the reconstructed value is representable.
#[inline]
pub fn dequantize_one(p: AffineParams, code: u32) -> f32 {
    (p.min as f64 + p.scale as f64 * code as f64) as f32
}

/// Reconstructs values from `u8` codes into `out` (resized to fit).
pub fn dequantize_u8(p: AffineParams, codes: &[u8], out: &mut Vec<f32>) {
    out.clear();
    out.extend(codes.iter().map(|&c| dequantize_one(p, c as u32)));
}

/// Reconstructs values from `u16` codes into `out` (resized to fit).
pub fn dequantize_u16(p: AffineParams, codes: &[u16], out: &mut Vec<f32>) {
    out.clear();
    out.extend(codes.iter().map(|&c| dequantize_one(p, c as u32)));
}

/// Indices of the `k` largest-magnitude entries of `src`, ascending.
///
/// `k` is clamped to `src.len()`. Ties break toward the lower index so the
/// selection is deterministic across platforms and thread counts. The
/// magnitude order is `f32::total_cmp` on `|v|`, which ranks NaN above
/// every finite value — a diverged coordinate is transmitted (and thus
/// propagates to receivers exactly like the dense codec) instead of
/// panicking mid-round.
pub fn top_k_indices(src: &[f32], k: usize) -> Vec<u32> {
    let k = k.min(src.len());
    if k == 0 {
        return Vec::new();
    }
    let mut order: Vec<u32> = (0..src.len() as u32).collect();
    let by_magnitude_desc = |&a: &u32, &b: &u32| {
        let (ma, mb) = (src[a as usize].abs(), src[b as usize].abs());
        mb.total_cmp(&ma).then(a.cmp(&b))
    };
    if k < order.len() {
        order.select_nth_unstable_by(k - 1, by_magnitude_desc);
        order.truncate(k);
    }
    order.sort_unstable();
    order
}

/// Gathers `src[indices]` into a dense value list (the top-k payload).
pub fn gather(src: &[f32], indices: &[u32]) -> Vec<f32> {
    indices.iter().map(|&i| src[i as usize]).collect()
}

/// Sparse-blend accumulation for masked gossip aggregation:
/// `out[idx] += w · (values[idx] − base[idx])` for each sparse entry.
///
/// Used when a neighbor's model arrives top-k sparsified: the receiver
/// substitutes its own parameters (`base`) for the coordinates the sender
/// did not transmit, so only transmitted coordinates move the aggregate.
///
/// # Panics
/// Panics if `indices.len() != values.len()` or any index is out of range.
pub fn sparse_blend_axpy(out: &mut [f32], base: &[f32], indices: &[u32], values: &[f32], w: f32) {
    assert_eq!(indices.len(), values.len(), "sparse arity mismatch");
    for (&idx, &val) in indices.iter().zip(values) {
        let i = idx as usize;
        out[i] += w * (val - base[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u8_roundtrip_error_is_half_step_bounded() {
        let src: Vec<f32> = (0..1000)
            .map(|i| ((i * 37) % 113) as f32 / 7.0 - 8.0)
            .collect();
        let (p, codes) = quantize_u8(&src);
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        let bound = p.scale / 2.0 + 1e-4;
        for (a, b) in src.iter().zip(&back) {
            assert!(
                (a - b).abs() <= bound,
                "error {} > bound {bound}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn u16_roundtrip_is_much_tighter_than_u8() {
        let src: Vec<f32> = (0..500).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let (p8, c8) = quantize_u8(&src);
        let (p16, c16) = quantize_u16(&src);
        let (mut b8, mut b16) = (Vec::new(), Vec::new());
        dequantize_u8(p8, &c8, &mut b8);
        dequantize_u16(p16, &c16, &mut b16);
        let err = |back: &[f32]| -> f32 {
            src.iter()
                .zip(back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max)
        };
        assert!(
            err(&b16) < err(&b8) / 16.0,
            "u16 {} vs u8 {}",
            err(&b16),
            err(&b8)
        );
    }

    #[test]
    fn constant_tensor_reconstructs_exactly() {
        let src = vec![0.75f32; 40];
        let (p, codes) = quantize_u8(&src);
        assert_eq!(p.scale, 0.0);
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn empty_tensor_quantizes_to_empty() {
        let (p, codes) = quantize_u8(&[]);
        assert_eq!(codes.len(), 0);
        assert_eq!(p.scale, 0.0);
    }

    #[test]
    fn range_extremes_reconstruct_exactly() {
        let src = [-2.0f32, 0.1, 3.0];
        let (p, codes) = quantize_u8(&src);
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        assert_eq!(back[0], -2.0, "minimum must be exact (code 0)");
        assert!(
            (back[2] - 3.0).abs() < 1e-5,
            "maximum lands on the top code"
        );
    }

    #[test]
    fn non_finite_inputs_quantize_without_panicking() {
        let src = [
            1.0f32,
            f32::NAN,
            -2.0,
            f32::INFINITY,
            3.0,
            f32::NEG_INFINITY,
        ];
        let (p, codes) = quantize_u8(&src);
        // range fitted over finite values only
        assert_eq!(p.min, -2.0);
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        assert!(back.iter().all(|v| v.is_finite()));
        assert!((back[4] - 3.0).abs() < 1e-5, "finite max stays on range");
        let all_bad = [f32::NAN, f32::INFINITY];
        let (p, codes) = quantize_u8(&all_bad);
        assert_eq!(p.scale, 0.0);
        assert_eq!(codes, vec![0, 0]);
    }

    #[test]
    fn extreme_finite_range_does_not_poison_with_nan() {
        // hi - lo overflows f32 here; the f64 range math must keep the
        // reconstruction finite and roughly preserve the endpoints
        let src = [-3.0e38f32, 0.0, 3.0e38];
        let (p, codes) = quantize_u8(&src);
        assert!(p.scale.is_finite());
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        assert!(back.iter().all(|v| v.is_finite()), "{back:?}");
        assert!(back[0] < -2.9e38 && back[2] > 2.9e38);
    }

    #[test]
    fn top_k_ranks_nan_first_instead_of_panicking() {
        let src = [1.0f32, f32::NAN, -2.0];
        assert_eq!(top_k_indices(&src, 1), vec![1]);
        assert_eq!(top_k_indices(&src, 2), vec![1, 2]);
    }

    #[test]
    fn top_k_picks_largest_magnitudes() {
        let src = [0.1f32, -5.0, 2.0, 0.0, -2.5, 4.0];
        assert_eq!(top_k_indices(&src, 3), vec![1, 4, 5]);
        assert_eq!(top_k_indices(&src, 1), vec![1]);
    }

    #[test]
    fn top_k_clamps_and_breaks_ties_low_index_first() {
        let src = [1.0f32, -1.0, 1.0];
        assert_eq!(top_k_indices(&src, 10), vec![0, 1, 2]);
        assert_eq!(top_k_indices(&src, 2), vec![0, 1]);
        assert_eq!(top_k_indices(&src, 0), Vec::<u32>::new());
    }

    #[test]
    fn gather_follows_indices() {
        let src = [10.0f32, 20.0, 30.0];
        assert_eq!(gather(&src, &[2, 0]), vec![30.0, 10.0]);
    }

    #[test]
    fn sparse_blend_moves_only_listed_coordinates() {
        let base = [1.0f32, 2.0, 3.0, 4.0];
        let mut out = base;
        sparse_blend_axpy(&mut out, &base, &[1, 3], &[4.0, 0.0], 0.5);
        assert_eq!(out, [1.0, 3.0, 3.0, 2.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_quantization_error_bounded(
            xs in proptest::collection::vec(-100.0f32..100.0, 1..300)
        ) {
            let (p, codes) = quantize_u8(&xs);
            let mut back = Vec::new();
            dequantize_u8(p, &codes, &mut back);
            let bound = p.scale / 2.0 + p.scale * 1e-3 + 1e-5;
            for (a, b) in xs.iter().zip(&back) {
                prop_assert!((a - b).abs() <= bound);
            }
        }

        #[test]
        fn prop_top_k_is_sorted_unique_and_maximal(
            xs in proptest::collection::vec(-10.0f32..10.0, 1..200),
            k in 1usize..50
        ) {
            let idx = top_k_indices(&xs, k);
            prop_assert_eq!(idx.len(), k.min(xs.len()));
            prop_assert!(idx.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
            // every selected magnitude >= every unselected magnitude
            let selected: Vec<bool> = {
                let mut s = vec![false; xs.len()];
                for &i in &idx { s[i as usize] = true; }
                s
            };
            let min_in = idx.iter().map(|&i| xs[i as usize].abs()).fold(f32::INFINITY, f32::min);
            for (i, &v) in xs.iter().enumerate() {
                if !selected[i] {
                    prop_assert!(v.abs() <= min_in + 1e-6);
                }
            }
        }
    }
}
