//! Lossy model-compression kernels: affine quantization, magnitude
//! (top-k) sparsification, and CHOCO-SGD-style error feedback.
//!
//! These are the numeric primitives behind the engine's `ModelCodec`
//! transport layer. They are deliberately transport-agnostic: the engine
//! decides how codes travel on the wire; this module only defines the
//! value ↔ code maps and their reconstruction error contracts:
//!
//! * **Affine quantization** maps a tensor to `levels` evenly spaced codes
//!   over `[min, max]`; reconstruction error is bounded by half a step,
//!   `|x − dequant(quant(x))| ≤ scale / 2` (plus f32 rounding).
//! * **Top-k selection** returns the indices of the `k` largest-magnitude
//!   entries (deterministic tie-break: lower index wins), sorted ascending
//!   so downstream scatter kernels stream through memory in order.
//! * **Error feedback** (`compress_with_feedback_*`) maintains a per-link
//!   *replica* — the receiver's last-delivered estimate of the sender's
//!   model — and compresses the residual `delta = model − replica`
//!   instead of the raw model, folding the delivered part back:
//!   `replica += β · recon(compress(delta))`. Whatever the codec failed
//!   to deliver stays inside the next residual (`delta' = model' −
//!   replica'` carries the unsent coordinates plus new model drift), so
//!   every coordinate's deferred discrepancy keeps growing until it wins
//!   a top-k slot. Plain top-k discards the unsent coordinates every
//!   round, which biases gossip aggregation systematically toward the
//!   frequently-transmitted coordinates; the replica construction
//!   (CHOCO-SGD, Koloskova et al.) bounds that bias. Note the naive
//!   alternative — compressing `model + accumulated-residual` directly
//!   and letting receivers substitute their own coordinates — is
//!   *unstable* under masked gossip: the backlog re-counts the full model
//!   value every deferred round and overshoots on delivery.
//!
//! Every feedback kernel is deterministic and allocation-free at steady
//! state: callers pass reusable output buffers plus a [`FeedbackScratch`],
//! and all of them retain capacity across calls.

/// Affine (asymmetric) quantization parameters for one tensor:
/// `value ≈ min + scale · code`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineParams {
    /// Reconstruction offset (the tensor minimum).
    pub min: f32,
    /// Reconstruction step between adjacent codes.
    pub scale: f32,
}

/// Computes affine parameters for quantizing `src` to `levels` codes
/// (`levels ≥ 2`). A constant tensor gets `scale = 0` so every code
/// reconstructs exactly to the constant.
///
/// Non-finite entries are ignored when fitting the range (and clamp to
/// its edges when encoded), so a numerically diverged model degrades the
/// reconstruction instead of aborting the run.
///
/// # Panics
/// Panics if `levels < 2`.
pub fn affine_params(src: &[f32], levels: u32) -> AffineParams {
    assert!(levels >= 2, "affine quantization needs at least 2 levels");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in src {
        if v.is_finite() {
            lo = lo.min(v as f64);
            hi = hi.max(v as f64);
        }
    }
    // lo >= hi covers empty/constant/all-non-finite inputs (lo = +∞ then)
    if lo >= hi {
        return AffineParams {
            min: if lo.is_finite() { lo as f32 } else { 0.0 },
            scale: 0.0,
        };
    }
    // the range is computed in f64 (hi − lo can exceed f32::MAX when both
    // extremes are near ±f32::MAX) and the step clamped finite, so extreme
    // models degrade in precision rather than dequantizing to NaN
    AffineParams {
        min: lo as f32,
        scale: (((hi - lo) / (levels - 1) as f64) as f32).min(f32::MAX),
    }
}

#[inline]
fn encode_one(v: f32, p: AffineParams, max_code: u32) -> u32 {
    if p.scale == 0.0 {
        return 0;
    }
    let code = ((v - p.min) / p.scale).round();
    // clamp handles f32 rounding at the range edges; NaN maps to code 0
    // and ±∞ saturate, so non-finite inputs cannot panic mid-round
    (code.max(0.0) as u32).min(max_code)
}

/// Quantizes `src` to `u8` codes (256 levels); returns the affine
/// parameters and one code per entry.
pub fn quantize_u8(src: &[f32]) -> (AffineParams, Vec<u8>) {
    let mut codes = Vec::new();
    let p = quantize_u8_into(src, &mut codes);
    (p, codes)
}

/// Allocation-free form of [`quantize_u8`]: writes the codes into a
/// reusable buffer (cleared first; capacity retained across calls).
pub fn quantize_u8_into(src: &[f32], codes: &mut Vec<u8>) -> AffineParams {
    let p = affine_params(src, 256);
    codes.clear();
    codes.extend(src.iter().map(|&v| encode_one(v, p, 255) as u8));
    p
}

/// Quantizes `src` to `u16` codes (65 536 levels).
pub fn quantize_u16(src: &[f32]) -> (AffineParams, Vec<u16>) {
    let mut codes = Vec::new();
    let p = quantize_u16_into(src, &mut codes);
    (p, codes)
}

/// Allocation-free form of [`quantize_u16`].
pub fn quantize_u16_into(src: &[f32], codes: &mut Vec<u16>) -> AffineParams {
    let p = affine_params(src, 65_536);
    codes.clear();
    codes.extend(src.iter().map(|&v| encode_one(v, p, 65_535) as u16));
    p
}

/// Reconstructs one value from its affine code. The multiply-add runs in
/// f64 — `scale · code` alone can exceed `f32::MAX` for extreme-range
/// tensors even though the reconstructed value is representable.
#[inline]
pub fn dequantize_one(p: AffineParams, code: u32) -> f32 {
    (p.min as f64 + p.scale as f64 * code as f64) as f32
}

/// Reconstructs values from `u8` codes into `out` (resized to fit).
pub fn dequantize_u8(p: AffineParams, codes: &[u8], out: &mut Vec<f32>) {
    out.clear();
    out.extend(codes.iter().map(|&c| dequantize_one(p, c as u32)));
}

/// Reconstructs values from `u16` codes into `out` (resized to fit).
pub fn dequantize_u16(p: AffineParams, codes: &[u16], out: &mut Vec<f32>) {
    out.clear();
    out.extend(codes.iter().map(|&c| dequantize_one(p, c as u32)));
}

/// Indices of the `k` largest-magnitude entries of `src`, ascending.
///
/// `k` is clamped to `src.len()`. Ties break toward the lower index so the
/// selection is deterministic across platforms and thread counts. The
/// magnitude order is `f32::total_cmp` on `|v|`, which ranks NaN above
/// every finite value — a diverged coordinate is transmitted (and thus
/// propagates to receivers exactly like the dense codec) instead of
/// panicking mid-round.
pub fn top_k_indices(src: &[f32], k: usize) -> Vec<u32> {
    let mut order = Vec::new();
    top_k_indices_into(src, k, &mut order);
    order
}

/// Allocation-free form of [`top_k_indices`]: the selection runs inside
/// `out` (cleared first; capacity retained), so steady-state callers pay
/// zero heap traffic per selection.
pub fn top_k_indices_into(src: &[f32], k: usize, out: &mut Vec<u32>) {
    out.clear();
    let k = k.min(src.len());
    if k == 0 {
        return;
    }
    out.extend(0..src.len() as u32);
    let by_magnitude_desc = |&a: &u32, &b: &u32| {
        let (ma, mb) = (src[a as usize].abs(), src[b as usize].abs());
        mb.total_cmp(&ma).then(a.cmp(&b))
    };
    if k < out.len() {
        out.select_nth_unstable_by(k - 1, by_magnitude_desc);
        out.truncate(k);
    }
    out.sort_unstable();
}

/// Gathers `src[indices]` into a dense value list (the top-k payload).
pub fn gather(src: &[f32], indices: &[u32]) -> Vec<f32> {
    let mut out = Vec::new();
    gather_into(src, indices, &mut out);
    out
}

/// Allocation-free form of [`gather`].
pub fn gather_into(src: &[f32], indices: &[u32], out: &mut Vec<f32>) {
    out.clear();
    out.extend(indices.iter().map(|&i| src[i as usize]));
}

/// Sparse-blend accumulation for masked gossip aggregation:
/// `out[idx] += w · (values[idx] − base[idx])` for each sparse entry.
///
/// Used when a neighbor's model arrives top-k sparsified: the receiver
/// substitutes its own parameters (`base`) for the coordinates the sender
/// did not transmit, so only transmitted coordinates move the aggregate.
///
/// # Panics
/// Panics if `indices.len() != values.len()` or any index is out of range.
pub fn sparse_blend_axpy(out: &mut [f32], base: &[f32], indices: &[u32], values: &[f32], w: f32) {
    assert_eq!(indices.len(), values.len(), "sparse arity mismatch");
    for (&idx, &val) in indices.iter().zip(values) {
        let i = idx as usize;
        out[i] += w * (val - base[i]);
    }
}

/// Reusable scratch for the error-feedback compression kernels. One
/// instance per concurrent compression stream (e.g. per receiving node);
/// all buffers retain capacity across calls.
#[derive(Debug, Clone, Default)]
pub struct FeedbackScratch {
    /// The residual `model − replica` of the most recent
    /// `compress_with_feedback_*` call — exposed so callers can hand the
    /// exact compressed tensor to a wire encoder.
    pub delta: Vec<f32>,
}

/// `delta = model − replica` — the accumulated per-link residual the
/// feedback kernels compress. `delta` is cleared first and retains
/// capacity across calls.
///
/// # Panics
/// Panics if `model.len() != replica.len()`.
pub fn accumulate_delta(model: &[f32], replica: &[f32], delta: &mut Vec<f32>) {
    assert_eq!(model.len(), replica.len(), "replica length mismatch");
    delta.clear();
    delta.extend(model.iter().zip(replica).map(|(&m, &r)| m - r));
}

/// Sparse replica update: `replica[idx] += β · values[n]` for each sparse
/// entry — folds a delivered top-k delta payload into the link replica.
/// With `β = 1` the replica lands exactly on the sender's model at the
/// transmitted coordinates (`replica + (model − replica) = model`).
///
/// # Panics
/// Panics if `indices.len() != values.len()` or any index is out of range.
pub fn scatter_axpy(replica: &mut [f32], indices: &[u32], values: &[f32], beta: f32) {
    assert_eq!(indices.len(), values.len(), "sparse arity mismatch");
    for (&idx, &val) in indices.iter().zip(values) {
        replica[idx as usize] += beta * val;
    }
}

/// Error-feedback top-k compression (the CHOCO-SGD hot path): computes
/// the per-link residual `delta = model − replica`, selects its `k`
/// largest-magnitude coordinates (the largest *discrepancies* since the
/// link last fired, not the largest raw parameters), writes their
/// ascending indices and exact delta values into `indices`/`values`, and
/// folds the transmitted part back into `replica` in place. The unsent
/// coordinates stay inside the next residual — error feedback.
///
/// Deterministic, and allocation-free once every buffer has reached
/// capacity.
///
/// # Panics
/// Panics if `model.len() != replica.len()`.
pub fn compress_with_feedback_top_k(
    model: &[f32],
    replica: &mut [f32],
    beta: f32,
    k: usize,
    scratch: &mut FeedbackScratch,
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    accumulate_delta(model, replica, &mut scratch.delta);
    top_k_indices_into(&scratch.delta, k, indices);
    gather_into(&scratch.delta, indices, values);
    scatter_axpy(replica, indices, values, beta);
}

/// Error-feedback 8-bit affine quantization: quantizes the residual
/// `delta = model − replica`, reconstructs it into `recon` (the payload a
/// receiver dequantizes), and advances `replica += β · recon` in place.
/// The quantization error stays inside the next residual and is corrected
/// on the link's next firing. Returns the affine parameters for wire
/// encoding. Same buffer contract as [`compress_with_feedback_top_k`].
pub fn compress_with_feedback_u8(
    model: &[f32],
    replica: &mut [f32],
    beta: f32,
    scratch: &mut FeedbackScratch,
    codes: &mut Vec<u8>,
    recon: &mut Vec<f32>,
) -> AffineParams {
    accumulate_delta(model, replica, &mut scratch.delta);
    let p = quantize_u8_into(&scratch.delta, codes);
    dequantize_u8(p, codes, recon);
    crate::ops::axpy(beta, recon, replica);
    p
}

/// Error-feedback 16-bit affine quantization; see
/// [`compress_with_feedback_u8`].
pub fn compress_with_feedback_u16(
    model: &[f32],
    replica: &mut [f32],
    beta: f32,
    scratch: &mut FeedbackScratch,
    codes: &mut Vec<u16>,
    recon: &mut Vec<f32>,
) -> AffineParams {
    accumulate_delta(model, replica, &mut scratch.delta);
    let p = quantize_u16_into(&scratch.delta, codes);
    dequantize_u16(p, codes, recon);
    crate::ops::axpy(beta, recon, replica);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u8_roundtrip_error_is_half_step_bounded() {
        let src: Vec<f32> = (0..1000)
            .map(|i| ((i * 37) % 113) as f32 / 7.0 - 8.0)
            .collect();
        let (p, codes) = quantize_u8(&src);
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        let bound = p.scale / 2.0 + 1e-4;
        for (a, b) in src.iter().zip(&back) {
            assert!(
                (a - b).abs() <= bound,
                "error {} > bound {bound}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn u16_roundtrip_is_much_tighter_than_u8() {
        let src: Vec<f32> = (0..500).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let (p8, c8) = quantize_u8(&src);
        let (p16, c16) = quantize_u16(&src);
        let (mut b8, mut b16) = (Vec::new(), Vec::new());
        dequantize_u8(p8, &c8, &mut b8);
        dequantize_u16(p16, &c16, &mut b16);
        let err = |back: &[f32]| -> f32 {
            src.iter()
                .zip(back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max)
        };
        assert!(
            err(&b16) < err(&b8) / 16.0,
            "u16 {} vs u8 {}",
            err(&b16),
            err(&b8)
        );
    }

    #[test]
    fn constant_tensor_reconstructs_exactly() {
        let src = vec![0.75f32; 40];
        let (p, codes) = quantize_u8(&src);
        assert_eq!(p.scale, 0.0);
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn empty_tensor_quantizes_to_empty() {
        let (p, codes) = quantize_u8(&[]);
        assert_eq!(codes.len(), 0);
        assert_eq!(p.scale, 0.0);
    }

    #[test]
    fn range_extremes_reconstruct_exactly() {
        let src = [-2.0f32, 0.1, 3.0];
        let (p, codes) = quantize_u8(&src);
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        assert_eq!(back[0], -2.0, "minimum must be exact (code 0)");
        assert!(
            (back[2] - 3.0).abs() < 1e-5,
            "maximum lands on the top code"
        );
    }

    #[test]
    fn non_finite_inputs_quantize_without_panicking() {
        let src = [
            1.0f32,
            f32::NAN,
            -2.0,
            f32::INFINITY,
            3.0,
            f32::NEG_INFINITY,
        ];
        let (p, codes) = quantize_u8(&src);
        // range fitted over finite values only
        assert_eq!(p.min, -2.0);
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        assert!(back.iter().all(|v| v.is_finite()));
        assert!((back[4] - 3.0).abs() < 1e-5, "finite max stays on range");
        let all_bad = [f32::NAN, f32::INFINITY];
        let (p, codes) = quantize_u8(&all_bad);
        assert_eq!(p.scale, 0.0);
        assert_eq!(codes, vec![0, 0]);
    }

    #[test]
    fn extreme_finite_range_does_not_poison_with_nan() {
        // hi - lo overflows f32 here; the f64 range math must keep the
        // reconstruction finite and roughly preserve the endpoints
        let src = [-3.0e38f32, 0.0, 3.0e38];
        let (p, codes) = quantize_u8(&src);
        assert!(p.scale.is_finite());
        let mut back = Vec::new();
        dequantize_u8(p, &codes, &mut back);
        assert!(back.iter().all(|v| v.is_finite()), "{back:?}");
        assert!(back[0] < -2.9e38 && back[2] > 2.9e38);
    }

    #[test]
    fn top_k_ranks_nan_first_instead_of_panicking() {
        let src = [1.0f32, f32::NAN, -2.0];
        assert_eq!(top_k_indices(&src, 1), vec![1]);
        assert_eq!(top_k_indices(&src, 2), vec![1, 2]);
    }

    #[test]
    fn top_k_picks_largest_magnitudes() {
        let src = [0.1f32, -5.0, 2.0, 0.0, -2.5, 4.0];
        assert_eq!(top_k_indices(&src, 3), vec![1, 4, 5]);
        assert_eq!(top_k_indices(&src, 1), vec![1]);
    }

    #[test]
    fn top_k_clamps_and_breaks_ties_low_index_first() {
        let src = [1.0f32, -1.0, 1.0];
        assert_eq!(top_k_indices(&src, 10), vec![0, 1, 2]);
        assert_eq!(top_k_indices(&src, 2), vec![0, 1]);
        assert_eq!(top_k_indices(&src, 0), Vec::<u32>::new());
    }

    #[test]
    fn gather_follows_indices() {
        let src = [10.0f32, 20.0, 30.0];
        assert_eq!(gather(&src, &[2, 0]), vec![30.0, 10.0]);
    }

    #[test]
    fn sparse_blend_moves_only_listed_coordinates() {
        let base = [1.0f32, 2.0, 3.0, 4.0];
        let mut out = base;
        sparse_blend_axpy(&mut out, &base, &[1, 3], &[4.0, 0.0], 0.5);
        assert_eq!(out, [1.0, 3.0, 3.0, 2.0]);
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let src: Vec<f32> = (0..257)
            .map(|i| ((i * 29) % 61) as f32 * 0.3 - 9.0)
            .collect();
        let (mut codes8, mut codes16, mut order) = (Vec::new(), Vec::new(), Vec::new());
        assert_eq!(quantize_u8_into(&src, &mut codes8), quantize_u8(&src).0);
        assert_eq!(codes8, quantize_u8(&src).1);
        assert_eq!(quantize_u16_into(&src, &mut codes16), quantize_u16(&src).0);
        assert_eq!(codes16, quantize_u16(&src).1);
        top_k_indices_into(&src, 7, &mut order);
        assert_eq!(order, top_k_indices(&src, 7));
        let mut vals = Vec::new();
        gather_into(&src, &order, &mut vals);
        assert_eq!(vals, gather(&src, &order));
    }

    #[test]
    fn feedback_top_k_selects_largest_discrepancy_and_lands_replica_exactly() {
        let model = [1.0f32, -0.5, 2.2, 0.0];
        // the replica already knows coordinate 2 well but is stale on 0
        let mut replica = vec![-3.0f32, -0.5, 2.0, 0.0];
        let mut scratch = FeedbackScratch::default();
        let (mut idx, mut vals) = (Vec::new(), Vec::new());
        compress_with_feedback_top_k(
            &model,
            &mut replica,
            1.0,
            1,
            &mut scratch,
            &mut idx,
            &mut vals,
        );
        // delta = [4.0, 0.0, 2.2 − 2.0, 0.0] → coordinate 0 wins
        // (largest discrepancy, not largest raw parameter)
        assert_eq!(idx, vec![0]);
        assert_eq!(vals, vec![4.0]);
        assert_eq!(scratch.delta, vec![4.0, 0.0, 2.2f32 - 2.0, 0.0]);
        // β = 1: the replica lands exactly on the model at the sent
        // coordinate and keeps its stale values elsewhere
        assert_eq!(replica, vec![1.0, -0.5, 2.0, 0.0]);
    }

    #[test]
    fn feedback_beta_damps_replica_tracking() {
        let model = [4.0f32, 1.0];
        let mut replica = vec![0.0f32; 2];
        let mut scratch = FeedbackScratch::default();
        let (mut idx, mut vals) = (Vec::new(), Vec::new());
        compress_with_feedback_top_k(
            &model,
            &mut replica,
            0.5,
            1,
            &mut scratch,
            &mut idx,
            &mut vals,
        );
        assert_eq!(idx, vec![0]);
        // replica moves β of the way to the model
        assert_eq!(replica, vec![2.0, 0.0]);
    }

    #[test]
    fn feedback_eventually_transmits_every_coordinate() {
        // Plain top-1 of a constant model sends the same coordinate
        // forever; the residual form drains each coordinate's discrepancy
        // exactly once and then goes quiet.
        let model = [3.0f32, 2.0, 1.0];
        let mut replica = vec![0.0f32; 3];
        let mut scratch = FeedbackScratch::default();
        let (mut idx, mut vals) = (Vec::new(), Vec::new());
        let mut sent = [false; 3];
        for _ in 0..3 {
            compress_with_feedback_top_k(
                &model,
                &mut replica,
                1.0,
                1,
                &mut scratch,
                &mut idx,
                &mut vals,
            );
            sent[idx[0] as usize] = true;
        }
        assert_eq!(sent, [true; 3], "every coordinate must be sent eventually");
        assert_eq!(replica, model, "replica converges to the constant model");
        // a converged link transmits zero deltas
        compress_with_feedback_top_k(
            &model,
            &mut replica,
            1.0,
            1,
            &mut scratch,
            &mut idx,
            &mut vals,
        );
        assert_eq!(vals, vec![0.0]);
    }

    #[test]
    fn feedback_quantized_residual_is_the_reconstruction_error() {
        let model: Vec<f32> = (0..100).map(|i| (i as f32 * 0.7).sin() * 2.0).collect();
        let mut replica = vec![0.0f32; model.len()];
        let mut scratch = FeedbackScratch::default();
        let (mut codes, mut recon) = (Vec::new(), Vec::new());
        let p = compress_with_feedback_u8(
            &model,
            &mut replica,
            1.0,
            &mut scratch,
            &mut codes,
            &mut recon,
        );
        assert_eq!(recon.len(), model.len());
        // after one firing the replica is within half a quantization step
        // of the model, and that error IS the next residual
        for (&r, &m) in replica.iter().zip(&model) {
            assert!((m - r).abs() <= p.scale / 2.0 + 1e-5);
        }
        let mut next_delta = Vec::new();
        accumulate_delta(&model, &replica, &mut next_delta);
        // second firing corrects the quantization error: the residual
        // range shrinks, so the replica converges toward the model
        let p2 = compress_with_feedback_u8(
            &model,
            &mut replica,
            1.0,
            &mut scratch,
            &mut codes,
            &mut recon,
        );
        assert!(p2.scale < p.scale / 16.0, "{} vs {}", p2.scale, p.scale);
        assert_eq!(scratch.delta, next_delta);
    }

    #[test]
    fn feedback_kernels_are_allocation_free_at_steady_state() {
        let model: Vec<f32> = (0..300).map(|i| ((i * 13) % 37) as f32 - 18.0).collect();
        let mut replica = vec![0.0f32; model.len()];
        let mut scratch = FeedbackScratch::default();
        let (mut idx, mut vals) = (Vec::new(), Vec::new());
        compress_with_feedback_top_k(
            &model,
            &mut replica,
            1.0,
            20,
            &mut scratch,
            &mut idx,
            &mut vals,
        );
        let caps = (scratch.delta.capacity(), idx.capacity(), vals.capacity());
        for _ in 0..5 {
            compress_with_feedback_top_k(
                &model,
                &mut replica,
                1.0,
                20,
                &mut scratch,
                &mut idx,
                &mut vals,
            );
        }
        assert_eq!(
            caps,
            (scratch.delta.capacity(), idx.capacity(), vals.capacity()),
            "steady-state calls must not grow any buffer"
        );
    }

    #[test]
    fn scatter_axpy_adds_at_listed_coordinates() {
        let mut replica = [1.0f32, 2.0, 3.0];
        scatter_axpy(&mut replica, &[0, 2], &[4.0, -1.0], 0.5);
        assert_eq!(replica, [3.0, 2.0, 2.5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_feedback_replica_converges_geometrically(
            xs in proptest::collection::vec(-10.0f32..10.0, 2..100),
            k in 1usize..10
        ) {
            // For a fixed model, each firing drains the k largest
            // residual coordinates exactly (β = 1), so the residual's
            // support shrinks by k per round and hits zero after
            // ⌈d / k⌉ firings.
            let mut replica = vec![0.0f32; xs.len()];
            let mut scratch = FeedbackScratch::default();
            let (mut idx, mut vals) = (Vec::new(), Vec::new());
            let firings = xs.len().div_ceil(k);
            for _ in 0..firings {
                compress_with_feedback_top_k(
                    &xs, &mut replica, 1.0, k, &mut scratch, &mut idx, &mut vals,
                );
            }
            prop_assert_eq!(&replica, &xs);
        }

        #[test]
        fn prop_quantization_error_bounded(
            xs in proptest::collection::vec(-100.0f32..100.0, 1..300)
        ) {
            let (p, codes) = quantize_u8(&xs);
            let mut back = Vec::new();
            dequantize_u8(p, &codes, &mut back);
            let bound = p.scale / 2.0 + p.scale * 1e-3 + 1e-5;
            for (a, b) in xs.iter().zip(&back) {
                prop_assert!((a - b).abs() <= bound);
            }
        }

        #[test]
        fn prop_top_k_is_sorted_unique_and_maximal(
            xs in proptest::collection::vec(-10.0f32..10.0, 1..200),
            k in 1usize..50
        ) {
            let idx = top_k_indices(&xs, k);
            prop_assert_eq!(idx.len(), k.min(xs.len()));
            prop_assert!(idx.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
            // every selected magnitude >= every unselected magnitude
            let selected: Vec<bool> = {
                let mut s = vec![false; xs.len()];
                for &i in &idx { s[i as usize] = true; }
                s
            };
            let min_in = idx.iter().map(|&i| xs[i as usize].abs()).fold(f32::INFINITY, f32::min);
            for (i, &v) in xs.iter().enumerate() {
                if !selected[i] {
                    prop_assert!(v.abs() <= min_in + 1e-6);
                }
            }
        }
    }
}
