//! Reductions and summary statistics over slices.

/// Sum of all elements.
#[inline]
pub fn sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
#[inline]
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f32
    }
}

/// Population variance; `0.0` for slices with fewer than two elements.
pub fn variance(x: &[f32]) -> f32 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / x.len() as f32
}

/// Population standard deviation.
#[inline]
pub fn std_dev(x: &[f32]) -> f32 {
    variance(x).sqrt()
}

/// Index of the maximum element (first occurrence wins); `None` when empty.
pub fn argmax(x: &[f32]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_v = x[0];
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    Some(best)
}

/// Maximum element; `None` when empty. NaNs are ignored unless all elements
/// are NaN, in which case the first element is returned.
pub fn max(x: &[f32]) -> Option<f32> {
    argmax(x).map(|i| x[i])
}

/// Minimum element; `None` when empty.
pub fn min(x: &[f32]) -> Option<f32> {
    if x.is_empty() {
        return None;
    }
    let mut best = x[0];
    for &v in &x[1..] {
        if v < best {
            best = v;
        }
    }
    Some(best)
}

/// Mean and standard deviation in one pass over `f64` accumulators, used for
/// metrics aggregation where `f32` accumulation error would be visible across
/// hundreds of nodes.
pub fn mean_std(x: &[f32]) -> (f32, f32) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let n = x.len() as f64;
    let mut s = 0.0f64;
    let mut s2 = 0.0f64;
    for &v in x {
        let v = v as f64;
        s += v;
        s2 += v * v;
    }
    let m = s / n;
    let var = (s2 / n - m * m).max(0.0);
    (m as f32, var.sqrt() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean_basics() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0; 10]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // var([1,2,3,4]) = 1.25 (population)
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 1.25).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_occurrence() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn min_max_roundtrip() {
        let x = [3.0, -1.0, 7.0, 0.0];
        assert_eq!(max(&x), Some(7.0));
        assert_eq!(min(&x), Some(-1.0));
    }

    #[test]
    fn mean_std_matches_two_pass() {
        let x: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let (m, s) = mean_std(&x);
        assert!((m - mean(&x)).abs() < 1e-5);
        assert!((s - std_dev(&x)).abs() < 1e-4);
    }
}
