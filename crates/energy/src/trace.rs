//! The energy-trace derivation pipeline (§2.3 and §4.2).
//!
//! Reproduces Table 2 of the paper from device profiles and workload specs:
//! per-round training energy for CIFAR-10 / FEMNIST on four phones, and the
//! number of training rounds available under a battery-fraction budget.

use crate::device::{DeviceKind, DeviceProfile};
use serde::{Deserialize, Serialize};

/// MobileNet-v2 parameter count — the AI Benchmark reference model whose
/// measured inference latency is scaled to the workload's model size.
pub const MOBILENET_V2_PARAMS: usize = 3_538_984;

/// FedScale's empirical rule: training time ≈ 3 × inference time.
pub const FEDSCALE_TRAIN_MULTIPLIER: f64 = 3.0;

/// A training workload as the energy model sees it: the paper's Table 1
/// hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Model parameter count `|x|`.
    pub model_params: usize,
    /// Mini-batch size `|ξ|`.
    pub batch_size: usize,
    /// Local SGD steps per round `E`.
    pub local_steps: usize,
}

impl WorkloadSpec {
    /// The CIFAR-10 workload of Table 1: |x| = 89 834, |ξ| = 32, E = 20.
    pub fn cifar10() -> Self {
        Self {
            model_params: 89_834,
            batch_size: 32,
            local_steps: 20,
        }
    }

    /// The FEMNIST workload of Table 1: |x| = 1 690 046, |ξ| = 16, E = 7.
    pub fn femnist() -> Self {
        Self {
            model_params: 1_690_046,
            batch_size: 16,
            local_steps: 7,
        }
    }

    /// Samples processed per training round.
    pub fn samples_per_round(&self) -> usize {
        self.batch_size * self.local_steps
    }
}

/// Wall-clock duration of one training round on `device`, seconds (Δ of
/// Eq. 2).
pub fn round_duration_s(device: &DeviceProfile, workload: &WorkloadSpec) -> f64 {
    let t_model_ms =
        device.mobilenet_inference_ms * workload.model_params as f64 / MOBILENET_V2_PARAMS as f64;
    FEDSCALE_TRAIN_MULTIPLIER * t_model_ms * 1e-3 * workload.samples_per_round() as f64
}

/// Energy of one training round on `device`, watt-hours (Eq. 2).
pub fn round_energy_wh(device: &DeviceProfile, workload: &WorkloadSpec) -> f64 {
    device.power_w * round_duration_s(device, workload) / 3600.0
}

/// Energy of one training round, milliwatt-hours (the Table 2 unit).
pub fn round_energy_mwh(device: &DeviceProfile, workload: &WorkloadSpec) -> f64 {
    round_energy_wh(device, workload) * 1000.0
}

/// Training rounds until `battery_fraction` of the battery is spent — the
/// per-node budget τ of the constrained setting (§4.2: 10 % for CIFAR-10,
/// 50 % for FEMNIST).
///
/// # Panics
/// Panics unless `0 < battery_fraction <= 1`.
pub fn training_budget_rounds(
    device: &DeviceProfile,
    workload: &WorkloadSpec,
    battery_fraction: f64,
) -> usize {
    assert!(
        battery_fraction > 0.0 && battery_fraction <= 1.0,
        "battery fraction must be in (0, 1]"
    );
    (device.battery_wh * battery_fraction / round_energy_wh(device, workload)).floor() as usize
}

/// One row of Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRow {
    /// Device name.
    pub device: String,
    /// Energy per round on CIFAR-10, mWh.
    pub cifar_mwh: f64,
    /// Energy per round on FEMNIST, mWh.
    pub femnist_mwh: f64,
    /// Budget rounds for CIFAR-10 at 10 % battery.
    pub cifar_rounds: usize,
    /// Budget rounds for FEMNIST at 50 % battery.
    pub femnist_rounds: usize,
}

/// Battery fraction used for the CIFAR-10 constrained setting (§4.2).
pub const CIFAR_BATTERY_FRACTION: f64 = 0.10;
/// Battery fraction used for the FEMNIST constrained setting (§4.2).
pub const FEMNIST_BATTERY_FRACTION: f64 = 0.50;

/// Regenerates Table 2 from the device profiles.
pub fn table2() -> Vec<TraceRow> {
    let cifar = WorkloadSpec::cifar10();
    let femnist = WorkloadSpec::femnist();
    DeviceKind::ALL
        .iter()
        .map(|kind| {
            let p = kind.profile();
            TraceRow {
                cifar_mwh: round_energy_mwh(&p, &cifar),
                femnist_mwh: round_energy_mwh(&p, &femnist),
                cifar_rounds: training_budget_rounds(&p, &cifar, CIFAR_BATTERY_FRACTION),
                femnist_rounds: training_budget_rounds(&p, &femnist, FEMNIST_BATTERY_FRACTION),
                device: p.name,
            }
        })
        .collect()
}

/// Stream index for the per-node harvest phase jitter (chained through
/// [`derive_seed`] so harvest randomness never collides with model, data,
/// or topology streams).
pub const HARVEST_PHASE_STREAM: u64 = 0x0BA7_7E21;

/// An energy-harvesting power profile, watts as a function of time.
///
/// Profiles are evaluated in *round* time: one unit of `t` is one
/// simulated round (whose wall-clock length the [`HarvestTrace`] carries),
/// so the same profile works across workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HarvestProfile {
    /// No harvesting — the battery only ever drains.
    None,
    /// Constant power source (bench harvester, mains trickle charger).
    Constant {
        /// Harvest power, watts.
        watts: f64,
    },
    /// Solar-like diurnal cycle: `P(t) = peak · max(0, sin(2π t / period))`
    /// — positive for the day half of each period, zero at night.
    Diurnal {
        /// Peak midday power, watts.
        peak_watts: f64,
        /// Cycle length in rounds.
        period_rounds: f64,
    },
    /// Piecewise-constant profile from measured data: `watts[k]` holds for
    /// round `k`, cycling past the end.
    Piecewise {
        /// One power sample (watts) per round, cycled.
        watts: Vec<f64>,
    },
}

impl HarvestProfile {
    /// Short stable name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            HarvestProfile::None => "none",
            HarvestProfile::Constant { .. } => "constant",
            HarvestProfile::Diurnal { .. } => "diurnal",
            HarvestProfile::Piecewise { .. } => "piecewise",
        }
    }

    /// The profile's natural period in rounds (1 for aperiodic profiles),
    /// used to scale per-node phase jitter.
    fn period_rounds(&self) -> f64 {
        match self {
            HarvestProfile::None | HarvestProfile::Constant { .. } => 1.0,
            HarvestProfile::Diurnal { period_rounds, .. } => *period_rounds,
            HarvestProfile::Piecewise { watts } => watts.len() as f64,
        }
    }

    /// Instantaneous power at round-time `t` (fractional rounds allowed).
    pub fn power_w(&self, t: f64) -> f64 {
        match self {
            HarvestProfile::None => 0.0,
            HarvestProfile::Constant { watts } => *watts,
            HarvestProfile::Diurnal {
                peak_watts,
                period_rounds,
            } => {
                let angle = 2.0 * std::f64::consts::PI * t / period_rounds;
                peak_watts * angle.sin().max(0.0)
            }
            HarvestProfile::Piecewise { watts } => {
                let k = (t.rem_euclid(watts.len() as f64)).floor() as usize;
                watts[k.min(watts.len() - 1)]
            }
        }
    }
}

/// A per-fleet harvest trace: one [`HarvestProfile`] shared by all nodes,
/// with a deterministic per-node phase offset (so a fleet under a diurnal
/// profile is not one perfectly synchronized wave), converted to per-round
/// energy through the round's wall-clock duration.
///
/// Phase offsets are drawn once at construction from
/// `stream_rng(derive_seed(seed, HARVEST_PHASE_STREAM), node)` — the
/// workspace's chained-seed discipline, reproducible across thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarvestTrace {
    profile: HarvestProfile,
    /// Wall-clock length of one simulated round, seconds. For lockstep
    /// fleets this is the *slowest* device's round time — the barrier
    /// everyone waits at, and therefore everyone's harvesting window.
    round_duration_s: f64,
    /// Per-node phase offsets in rounds.
    phase: Vec<f64>,
}

impl HarvestTrace {
    /// Builds a trace for `n` nodes. `jitter_fraction ∈ [0, 1]` scales the
    /// per-node phase offsets: each node is shifted by a uniform draw from
    /// `[0, jitter_fraction · period)` rounds (0 = perfectly synchronized
    /// fleet).
    ///
    /// # Panics
    /// Panics on `n == 0`, a non-positive/non-finite round duration, or a
    /// jitter fraction outside `[0, 1]`.
    pub fn new(
        profile: HarvestProfile,
        round_duration_s: f64,
        n: usize,
        seed: u64,
        jitter_fraction: f64,
    ) -> Self {
        use rand::{RngExt, SeedableRng};
        assert!(n > 0, "empty harvest fleet");
        assert!(
            round_duration_s.is_finite() && round_duration_s > 0.0,
            "round duration must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&jitter_fraction),
            "phase jitter fraction must be in [0, 1]"
        );
        let period = profile.period_rounds();
        let phase_seed = skiptrain_linalg::rng::derive_seed(seed, HARVEST_PHASE_STREAM);
        let phase = (0..n)
            .map(|i| {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(
                    skiptrain_linalg::rng::derive_seed(phase_seed, i as u64),
                );
                rng.random::<f64>() * jitter_fraction * period
            })
            .collect();
        Self {
            profile,
            round_duration_s,
            phase,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// True for zero nodes (not constructible via the public API).
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// The profile driving this trace.
    pub fn profile(&self) -> &HarvestProfile {
        &self.profile
    }

    /// Wall-clock length of one round, seconds.
    pub fn round_duration_s(&self) -> f64 {
        self.round_duration_s
    }

    /// Energy harvested by `node` during `round`, Wh: the profile's power
    /// at the node's phase-shifted round time, over the round duration.
    pub fn energy_wh(&self, node: usize, round: usize) -> f64 {
        let t = round as f64 + self.phase[node];
        self.profile.power_w(t) * self.round_duration_s / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper, in row order of `DeviceKind::ALL`.
    const PAPER_TABLE2: [(&str, f64, f64, usize, usize); 4] = [
        ("Xiaomi 12 Pro", 6.5, 22.0, 272, 413),
        ("Samsung Galaxy S22 Ultra", 6.0, 20.0, 324, 492),
        ("OnePlus Nord 2 5G", 2.6, 8.4, 681, 1034),
        ("Xiaomi Poco X3", 8.5, 28.0, 272, 413),
    ];

    #[test]
    fn derived_energies_match_table2_within_rounding() {
        for (row, &(name, cifar, femnist, _, _)) in table2().iter().zip(&PAPER_TABLE2) {
            assert_eq!(row.device, name);
            let cifar_err = (row.cifar_mwh - cifar).abs() / cifar;
            let femnist_err = (row.femnist_mwh - femnist).abs() / femnist;
            assert!(
                cifar_err < 0.03,
                "{name} CIFAR: derived {} vs paper {cifar}",
                row.cifar_mwh
            );
            assert!(
                femnist_err < 0.05,
                "{name} FEMNIST: derived {} vs paper {femnist}",
                row.femnist_mwh
            );
        }
    }

    #[test]
    fn derived_budgets_match_table2_exactly() {
        for (row, &(name, _, _, cifar_rounds, femnist_rounds)) in table2().iter().zip(&PAPER_TABLE2)
        {
            assert_eq!(
                row.cifar_rounds, cifar_rounds,
                "{name}: CIFAR budget {} vs paper {cifar_rounds}",
                row.cifar_rounds
            );
            assert_eq!(
                row.femnist_rounds, femnist_rounds,
                "{name}: FEMNIST budget {} vs paper {femnist_rounds}",
                row.femnist_rounds
            );
        }
    }

    #[test]
    fn femnist_costs_more_than_cifar_per_round() {
        // §4.2: "training on FEMNIST is more energy-demanding due to the
        // larger model size"
        for row in table2() {
            assert!(row.femnist_mwh > 3.0 * row.cifar_mwh);
        }
    }

    #[test]
    fn duration_scales_linearly_with_params() {
        let p = DeviceKind::Xiaomi12Pro.profile();
        let base = WorkloadSpec {
            model_params: 100_000,
            batch_size: 8,
            local_steps: 4,
        };
        let double = WorkloadSpec {
            model_params: 200_000,
            ..base
        };
        let r = round_duration_s(&p, &double) / round_duration_s(&p, &base);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn duration_scales_with_batch_and_steps() {
        let p = DeviceKind::PocoX3.profile();
        let base = WorkloadSpec {
            model_params: 100_000,
            batch_size: 8,
            local_steps: 4,
        };
        let bigger = WorkloadSpec {
            batch_size: 16,
            local_steps: 8,
            ..base
        };
        let r = round_duration_s(&p, &bigger) / round_duration_s(&p, &base);
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn budget_is_monotone_in_fraction() {
        let p = DeviceKind::GalaxyS22Ultra.profile();
        let w = WorkloadSpec::cifar10();
        let lo = training_budget_rounds(&p, &w, 0.1);
        let hi = training_budget_rounds(&p, &w, 0.5);
        assert!(hi >= 5 * lo - 5 && hi <= 5 * lo + 5, "lo={lo} hi={hi}");
    }

    #[test]
    #[should_panic(expected = "battery fraction")]
    fn rejects_zero_fraction() {
        let p = DeviceKind::PocoX3.profile();
        let _ = training_budget_rounds(&p, &WorkloadSpec::cifar10(), 0.0);
    }

    #[test]
    fn constant_profile_converts_watts_to_wh_per_round() {
        // 2 W over a 1800 s round = 1 Wh, regardless of node or round
        let trace = HarvestTrace::new(HarvestProfile::Constant { watts: 2.0 }, 1800.0, 3, 7, 0.5);
        for node in 0..3 {
            for round in [0usize, 1, 99] {
                assert!((trace.energy_wh(node, round) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn diurnal_profile_is_zero_at_night_and_peaks_at_midday() {
        let p = HarvestProfile::Diurnal {
            peak_watts: 4.0,
            period_rounds: 24.0,
        };
        // midday = quarter period
        assert!((p.power_w(6.0) - 4.0).abs() < 1e-9);
        // night half of the cycle is clamped to zero
        for t in [13.0, 18.0, 23.5] {
            assert_eq!(p.power_w(t), 0.0);
        }
        // integral over a full period is peak·period/π (half-sine mean)
        let steps = 10_000;
        let mean: f64 = (0..steps)
            .map(|k| p.power_w(24.0 * k as f64 / steps as f64))
            .sum::<f64>()
            / steps as f64;
        assert!((mean - 4.0 / std::f64::consts::PI).abs() < 1e-3);
    }

    #[test]
    fn piecewise_profile_cycles_its_samples() {
        let p = HarvestProfile::Piecewise {
            watts: vec![1.0, 0.0, 3.0],
        };
        assert_eq!(p.power_w(0.0), 1.0);
        assert_eq!(p.power_w(1.2), 0.0);
        assert_eq!(p.power_w(2.9), 3.0);
        // cycles past the end
        assert_eq!(p.power_w(3.0), 1.0);
        assert_eq!(p.power_w(7.5), 0.0);
    }

    #[test]
    fn phase_jitter_is_deterministic_and_bounded() {
        let mk = || {
            HarvestTrace::new(
                HarvestProfile::Diurnal {
                    peak_watts: 1.0,
                    period_rounds: 12.0,
                },
                600.0,
                16,
                42,
                0.5,
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a, b, "same seed must give identical phases");
        // different nodes get different phases (jitter actually applied)
        let e0: Vec<f64> = (0..8).map(|r| a.energy_wh(0, r)).collect();
        let e1: Vec<f64> = (0..8).map(|r| a.energy_wh(1, r)).collect();
        assert_ne!(e0, e1, "per-node phase jitter must desynchronize nodes");
        // a different seed shifts the phases
        let c = HarvestTrace::new(
            HarvestProfile::Diurnal {
                peak_watts: 1.0,
                period_rounds: 12.0,
            },
            600.0,
            16,
            43,
            0.5,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn zero_jitter_synchronizes_the_fleet() {
        let trace = HarvestTrace::new(
            HarvestProfile::Diurnal {
                peak_watts: 2.0,
                period_rounds: 8.0,
            },
            3600.0,
            5,
            9,
            0.0,
        );
        for round in 0..8 {
            let e0 = trace.energy_wh(0, round);
            for node in 1..5 {
                assert_eq!(trace.energy_wh(node, round), e0);
            }
        }
    }
}
