//! The energy-trace derivation pipeline (§2.3 and §4.2).
//!
//! Reproduces Table 2 of the paper from device profiles and workload specs:
//! per-round training energy for CIFAR-10 / FEMNIST on four phones, and the
//! number of training rounds available under a battery-fraction budget.

use crate::device::{DeviceKind, DeviceProfile};
use serde::{Deserialize, Serialize};

/// MobileNet-v2 parameter count — the AI Benchmark reference model whose
/// measured inference latency is scaled to the workload's model size.
pub const MOBILENET_V2_PARAMS: usize = 3_538_984;

/// FedScale's empirical rule: training time ≈ 3 × inference time.
pub const FEDSCALE_TRAIN_MULTIPLIER: f64 = 3.0;

/// A training workload as the energy model sees it: the paper's Table 1
/// hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Model parameter count `|x|`.
    pub model_params: usize,
    /// Mini-batch size `|ξ|`.
    pub batch_size: usize,
    /// Local SGD steps per round `E`.
    pub local_steps: usize,
}

impl WorkloadSpec {
    /// The CIFAR-10 workload of Table 1: |x| = 89 834, |ξ| = 32, E = 20.
    pub fn cifar10() -> Self {
        Self {
            model_params: 89_834,
            batch_size: 32,
            local_steps: 20,
        }
    }

    /// The FEMNIST workload of Table 1: |x| = 1 690 046, |ξ| = 16, E = 7.
    pub fn femnist() -> Self {
        Self {
            model_params: 1_690_046,
            batch_size: 16,
            local_steps: 7,
        }
    }

    /// Samples processed per training round.
    pub fn samples_per_round(&self) -> usize {
        self.batch_size * self.local_steps
    }
}

/// Wall-clock duration of one training round on `device`, seconds (Δ of
/// Eq. 2).
pub fn round_duration_s(device: &DeviceProfile, workload: &WorkloadSpec) -> f64 {
    let t_model_ms =
        device.mobilenet_inference_ms * workload.model_params as f64 / MOBILENET_V2_PARAMS as f64;
    FEDSCALE_TRAIN_MULTIPLIER * t_model_ms * 1e-3 * workload.samples_per_round() as f64
}

/// Energy of one training round on `device`, watt-hours (Eq. 2).
pub fn round_energy_wh(device: &DeviceProfile, workload: &WorkloadSpec) -> f64 {
    device.power_w * round_duration_s(device, workload) / 3600.0
}

/// Energy of one training round, milliwatt-hours (the Table 2 unit).
pub fn round_energy_mwh(device: &DeviceProfile, workload: &WorkloadSpec) -> f64 {
    round_energy_wh(device, workload) * 1000.0
}

/// Training rounds until `battery_fraction` of the battery is spent — the
/// per-node budget τ of the constrained setting (§4.2: 10 % for CIFAR-10,
/// 50 % for FEMNIST).
///
/// # Panics
/// Panics unless `0 < battery_fraction <= 1`.
pub fn training_budget_rounds(
    device: &DeviceProfile,
    workload: &WorkloadSpec,
    battery_fraction: f64,
) -> usize {
    assert!(
        battery_fraction > 0.0 && battery_fraction <= 1.0,
        "battery fraction must be in (0, 1]"
    );
    (device.battery_wh * battery_fraction / round_energy_wh(device, workload)).floor() as usize
}

/// One row of Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRow {
    /// Device name.
    pub device: String,
    /// Energy per round on CIFAR-10, mWh.
    pub cifar_mwh: f64,
    /// Energy per round on FEMNIST, mWh.
    pub femnist_mwh: f64,
    /// Budget rounds for CIFAR-10 at 10 % battery.
    pub cifar_rounds: usize,
    /// Budget rounds for FEMNIST at 50 % battery.
    pub femnist_rounds: usize,
}

/// Battery fraction used for the CIFAR-10 constrained setting (§4.2).
pub const CIFAR_BATTERY_FRACTION: f64 = 0.10;
/// Battery fraction used for the FEMNIST constrained setting (§4.2).
pub const FEMNIST_BATTERY_FRACTION: f64 = 0.50;

/// Regenerates Table 2 from the device profiles.
pub fn table2() -> Vec<TraceRow> {
    let cifar = WorkloadSpec::cifar10();
    let femnist = WorkloadSpec::femnist();
    DeviceKind::ALL
        .iter()
        .map(|kind| {
            let p = kind.profile();
            TraceRow {
                cifar_mwh: round_energy_mwh(&p, &cifar),
                femnist_mwh: round_energy_mwh(&p, &femnist),
                cifar_rounds: training_budget_rounds(&p, &cifar, CIFAR_BATTERY_FRACTION),
                femnist_rounds: training_budget_rounds(&p, &femnist, FEMNIST_BATTERY_FRACTION),
                device: p.name,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper, in row order of `DeviceKind::ALL`.
    const PAPER_TABLE2: [(&str, f64, f64, usize, usize); 4] = [
        ("Xiaomi 12 Pro", 6.5, 22.0, 272, 413),
        ("Samsung Galaxy S22 Ultra", 6.0, 20.0, 324, 492),
        ("OnePlus Nord 2 5G", 2.6, 8.4, 681, 1034),
        ("Xiaomi Poco X3", 8.5, 28.0, 272, 413),
    ];

    #[test]
    fn derived_energies_match_table2_within_rounding() {
        for (row, &(name, cifar, femnist, _, _)) in table2().iter().zip(&PAPER_TABLE2) {
            assert_eq!(row.device, name);
            let cifar_err = (row.cifar_mwh - cifar).abs() / cifar;
            let femnist_err = (row.femnist_mwh - femnist).abs() / femnist;
            assert!(
                cifar_err < 0.03,
                "{name} CIFAR: derived {} vs paper {cifar}",
                row.cifar_mwh
            );
            assert!(
                femnist_err < 0.05,
                "{name} FEMNIST: derived {} vs paper {femnist}",
                row.femnist_mwh
            );
        }
    }

    #[test]
    fn derived_budgets_match_table2_exactly() {
        for (row, &(name, _, _, cifar_rounds, femnist_rounds)) in table2().iter().zip(&PAPER_TABLE2)
        {
            assert_eq!(
                row.cifar_rounds, cifar_rounds,
                "{name}: CIFAR budget {} vs paper {cifar_rounds}",
                row.cifar_rounds
            );
            assert_eq!(
                row.femnist_rounds, femnist_rounds,
                "{name}: FEMNIST budget {} vs paper {femnist_rounds}",
                row.femnist_rounds
            );
        }
    }

    #[test]
    fn femnist_costs_more_than_cifar_per_round() {
        // §4.2: "training on FEMNIST is more energy-demanding due to the
        // larger model size"
        for row in table2() {
            assert!(row.femnist_mwh > 3.0 * row.cifar_mwh);
        }
    }

    #[test]
    fn duration_scales_linearly_with_params() {
        let p = DeviceKind::Xiaomi12Pro.profile();
        let base = WorkloadSpec {
            model_params: 100_000,
            batch_size: 8,
            local_steps: 4,
        };
        let double = WorkloadSpec {
            model_params: 200_000,
            ..base
        };
        let r = round_duration_s(&p, &double) / round_duration_s(&p, &base);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn duration_scales_with_batch_and_steps() {
        let p = DeviceKind::PocoX3.profile();
        let base = WorkloadSpec {
            model_params: 100_000,
            batch_size: 8,
            local_steps: 4,
        };
        let bigger = WorkloadSpec {
            batch_size: 16,
            local_steps: 8,
            ..base
        };
        let r = round_duration_s(&p, &bigger) / round_duration_s(&p, &base);
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn budget_is_monotone_in_fraction() {
        let p = DeviceKind::GalaxyS22Ultra.profile();
        let w = WorkloadSpec::cifar10();
        let lo = training_budget_rounds(&p, &w, 0.1);
        let hi = training_budget_rounds(&p, &w, 0.5);
        assert!(hi >= 5 * lo - 5 && hi <= 5 * lo + 5, "lo={lo} hi={hi}");
    }

    #[test]
    #[should_panic(expected = "battery fraction")]
    fn rejects_zero_fraction() {
        let p = DeviceKind::PocoX3.profile();
        let _ = training_budget_rounds(&p, &WorkloadSpec::cifar10(), 0.0);
    }
}
