//! Per-node battery charge state machines and participation policies.
//!
//! This module closes the loop the rest of the crate only records: a
//! [`BatteryState`] holds each node's charge in watt-hours, recharged by a
//! [`crate::trace::HarvestTrace`] and drained by the actual training and
//! communication spend the [`crate::ledger::EnergyLedger`] attributes to
//! the node, and a [`BatteryPolicy`] turns charge into a per-round
//! participation decision (train + gossip, or stay silent).
//!
//! # Drain/recharge model and units
//!
//! Everything is in watt-hours, the ledger's unit. Per simulated round, in
//! order:
//!
//! 1. **Recharge**: the harvest trace offers each node
//!    `P_i(t) · Δ_round / 3600` Wh; the battery accepts what fits below
//!    capacity and counts the clipped remainder as *wasted*.
//! 2. **Decision**: the policy maps charge fractions to a participation
//!    mask (see [`BatteryPolicy`]).
//! 3. **Brown-out**: a node that decided to train but holds less charge
//!    than its per-round training cost burns its remaining charge to zero
//!    and drops out of the round — partial work is lost, which is exactly
//!    why threshold policies ("only train when battery ≥ 20 %", the
//!    xaynet participant rule) beat always-on under trickle harvests.
//! 4. **Drain**: after the round, each participant is debited its ledger
//!    delta (training + tx + rx energy). Drain clamps at empty; demand
//!    beyond the clamp is counted as *deficit* rather than going negative.
//!
//! The conservation invariant (property-tested below) is
//! `charge = initial + (harvested − wasted) − drained`, with
//! `0 ≤ charge ≤ capacity` at all times.

use serde::{Deserialize, Serialize};

/// Per-node battery charge state machine (all quantities in Wh).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryState {
    capacity_wh: Vec<f64>,
    charge_wh: Vec<f64>,
    initial_wh: Vec<f64>,
    /// Total harvest *offered* per node (before capacity clipping).
    harvested_wh: Vec<f64>,
    /// Offered harvest clipped away at full capacity.
    wasted_wh: Vec<f64>,
    /// Drain actually debited (clamped at empty).
    drained_wh: Vec<f64>,
    /// Drain demanded beyond the charge available (the clamped part).
    deficit_wh: Vec<f64>,
}

impl BatteryState {
    /// Creates batteries at full charge.
    ///
    /// # Panics
    /// Panics on empty input or any non-finite / non-positive capacity.
    pub fn new(capacity_wh: Vec<f64>) -> Self {
        Self::with_initial_fraction(capacity_wh, 1.0)
    }

    /// Creates batteries charged to `initial_fraction` of capacity.
    ///
    /// # Panics
    /// Panics on empty input, any non-finite / non-positive capacity, or
    /// `initial_fraction` outside `[0, 1]`.
    pub fn with_initial_fraction(capacity_wh: Vec<f64>, initial_fraction: f64) -> Self {
        assert!(!capacity_wh.is_empty(), "empty battery fleet");
        assert!(
            capacity_wh.iter().all(|c| c.is_finite() && *c > 0.0),
            "battery capacities must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&initial_fraction),
            "initial charge fraction must be in [0, 1]"
        );
        let n = capacity_wh.len();
        let charge: Vec<f64> = capacity_wh.iter().map(|c| c * initial_fraction).collect();
        Self {
            charge_wh: charge.clone(),
            initial_wh: charge,
            capacity_wh,
            harvested_wh: vec![0.0; n],
            wasted_wh: vec![0.0; n],
            drained_wh: vec![0.0; n],
            deficit_wh: vec![0.0; n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.capacity_wh.len()
    }

    /// True for zero nodes (not constructible via the public API).
    pub fn is_empty(&self) -> bool {
        self.capacity_wh.is_empty()
    }

    /// Capacity of `node`, Wh.
    pub fn capacity_wh(&self, node: usize) -> f64 {
        self.capacity_wh[node]
    }

    /// Current charge of `node`, Wh.
    pub fn charge_wh(&self, node: usize) -> f64 {
        self.charge_wh[node]
    }

    /// Charge of `node` at construction, Wh.
    pub fn initial_wh(&self, node: usize) -> f64 {
        self.initial_wh[node]
    }

    /// Current charge of `node` as a fraction of capacity, in `[0, 1]`.
    pub fn charge_fraction(&self, node: usize) -> f64 {
        self.charge_wh[node] / self.capacity_wh[node]
    }

    /// Offers `wh` of harvested energy to `node`; the battery accepts what
    /// fits below capacity and counts the rest as wasted. Returns the
    /// accepted amount.
    pub fn recharge(&mut self, node: usize, wh: f64) -> f64 {
        debug_assert!(wh >= 0.0, "harvest must be non-negative");
        self.harvested_wh[node] += wh;
        let headroom = self.capacity_wh[node] - self.charge_wh[node];
        let accepted = wh.min(headroom);
        self.charge_wh[node] += accepted;
        self.wasted_wh[node] += wh - accepted;
        accepted
    }

    /// Debits `wh` from `node`, clamping at empty; the unmet part is
    /// counted as deficit. Returns the amount actually drained.
    pub fn drain(&mut self, node: usize, wh: f64) -> f64 {
        debug_assert!(wh >= 0.0, "drain must be non-negative");
        let drained = wh.min(self.charge_wh[node]);
        self.charge_wh[node] -= drained;
        self.drained_wh[node] += drained;
        self.deficit_wh[node] += wh - drained;
        drained
    }

    /// Burns whatever charge `node` still holds (the brown-out case: a
    /// round was attempted that the battery could not finish). Returns the
    /// burned amount.
    pub fn drain_all(&mut self, node: usize) -> f64 {
        let remaining = self.charge_wh[node];
        self.charge_wh[node] = 0.0;
        self.drained_wh[node] += remaining;
        remaining
    }

    /// Total harvest offered to `node` so far (before clipping), Wh.
    pub fn node_harvested_wh(&self, node: usize) -> f64 {
        self.harvested_wh[node]
    }

    /// Harvest clipped away at full capacity for `node`, Wh.
    pub fn node_wasted_wh(&self, node: usize) -> f64 {
        self.wasted_wh[node]
    }

    /// Energy actually drained from `node`, Wh.
    pub fn node_drained_wh(&self, node: usize) -> f64 {
        self.drained_wh[node]
    }

    /// Drain demanded from `node` beyond its charge (clamped at empty), Wh.
    pub fn node_deficit_wh(&self, node: usize) -> f64 {
        self.deficit_wh[node]
    }

    /// Sum of offered harvest over all nodes, Wh.
    pub fn total_harvested_wh(&self) -> f64 {
        self.harvested_wh.iter().sum()
    }

    /// Sum of capacity-clipped harvest over all nodes, Wh.
    pub fn total_wasted_wh(&self) -> f64 {
        self.wasted_wh.iter().sum()
    }

    /// Sum of actual drain over all nodes, Wh.
    pub fn total_drained_wh(&self) -> f64 {
        self.drained_wh.iter().sum()
    }

    /// Sum of current charge over all nodes, Wh.
    pub fn total_charge_wh(&self) -> f64 {
        self.charge_wh.iter().sum()
    }
}

/// Charge-aware participation policy: maps a node's battery state to a
/// per-round decision to participate (train + gossip) or stay silent.
///
/// Decisions use charge *fractions* so one policy serves heterogeneous
/// fleets. Stateful policies (hysteresis, duty-cycling) keep their memory
/// in a [`ParticipationState`], not in the enum, so policies stay plain
/// serializable data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatteryPolicy {
    /// Participate whenever any charge is left — the static baseline the
    /// paper's always-train schedules correspond to.
    AlwaysOn,
    /// Participate only at `charge ≥ min_fraction · capacity` (the xaynet
    /// participant rule; `min_fraction = 0.2` is "battery ≥ 20 %").
    Threshold {
        /// Minimum charge fraction required to participate.
        min_fraction: f64,
    },
    /// Two-band threshold: a node drops out when charge falls below
    /// `suspend_fraction` and only returns once it has recovered past
    /// `resume_fraction` (`suspend < resume`), eliminating the on/off
    /// flapping a single threshold exhibits around its boundary.
    Hysteresis {
        /// Charge fraction below which a node suspends.
        suspend_fraction: f64,
        /// Charge fraction a suspended node must recover to resume.
        resume_fraction: f64,
    },
    /// Proportional duty-cycling: a node at charge fraction `f`
    /// participates in `min(1, f / target_fraction)` of rounds, spread
    /// deterministically by per-node error diffusion (credit accumulates
    /// each round; the node fires when it reaches 1). At or above
    /// `target_fraction` the node runs every round.
    DutyCycle {
        /// Charge fraction at (or above) which a node runs every round.
        target_fraction: f64,
    },
}

impl BatteryPolicy {
    /// Short stable name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            BatteryPolicy::AlwaysOn => "always-on",
            BatteryPolicy::Threshold { .. } => "threshold",
            BatteryPolicy::Hysteresis { .. } => "hysteresis",
            BatteryPolicy::DutyCycle { .. } => "duty-cycle",
        }
    }

    /// Decides one node's participation this round from its charge
    /// fraction. `state` must already cover the fleet (see
    /// [`ParticipationState::new`] /
    /// [`BatteryPolicy::decide_into`]). This is the per-node primitive
    /// behind both the fleet-wide mask and heterogeneous
    /// policy-per-node fleets, where each node consults its own policy
    /// against the shared state.
    pub fn decide_node(
        &self,
        node: usize,
        battery: &BatteryState,
        state: &mut ParticipationState,
    ) -> bool {
        let i = node;
        let frac = battery.charge_fraction(i);
        match *self {
            BatteryPolicy::AlwaysOn => battery.charge_wh(i) > 0.0,
            BatteryPolicy::Threshold { min_fraction } => frac >= min_fraction,
            BatteryPolicy::Hysteresis {
                suspend_fraction,
                resume_fraction,
            } => {
                if state.suspended[i] {
                    if frac >= resume_fraction {
                        state.suspended[i] = false;
                    }
                } else if frac < suspend_fraction {
                    state.suspended[i] = true;
                }
                !state.suspended[i]
            }
            BatteryPolicy::DutyCycle { target_fraction } => {
                if battery.charge_wh(i) <= 0.0 {
                    false
                } else {
                    let duty = (frac / target_fraction).min(1.0);
                    state.credit[i] += duty;
                    if state.credit[i] >= 1.0 {
                        state.credit[i] -= 1.0;
                        true
                    } else {
                        false
                    }
                }
            }
        }
    }

    /// Decides this round's participation mask from charge fractions,
    /// writing into `active` (resized to the fleet). `state` carries the
    /// policy's per-node memory across rounds and must be reused between
    /// calls. Allocation-free once buffers have their capacity.
    pub fn decide_into(
        &self,
        battery: &BatteryState,
        state: &mut ParticipationState,
        active: &mut Vec<bool>,
    ) {
        let n = battery.len();
        state.ensure_len(n);
        active.clear();
        active.resize(n, false);
        for (i, slot) in active.iter_mut().enumerate() {
            *slot = self.decide_node(i, battery, state);
        }
    }
}

/// Decides a heterogeneous fleet's participation mask: node `i` consults
/// `policies[i]` against the shared charge state and participation
/// memory. The per-node loop is identical to
/// [`BatteryPolicy::decide_into`] with a policy lookup per node, so a
/// vector of identical policies reproduces the fleet-wide mask exactly.
///
/// # Panics
/// Panics unless `policies` holds one policy per node.
pub fn decide_per_node_into(
    policies: &[BatteryPolicy],
    battery: &BatteryState,
    state: &mut ParticipationState,
    active: &mut Vec<bool>,
) {
    let n = battery.len();
    assert_eq!(policies.len(), n, "one policy per node required");
    state.ensure_len(n);
    active.clear();
    active.resize(n, false);
    for (i, slot) in active.iter_mut().enumerate() {
        *slot = policies[i].decide_node(i, battery, state);
    }
}

/// Per-node memory for stateful [`BatteryPolicy`] variants (hysteresis
/// latches, duty-cycle credit). One instance per fleet, reused each round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParticipationState {
    suspended: Vec<bool>,
    credit: Vec<f64>,
}

impl ParticipationState {
    /// A fresh state for `n` nodes (nothing suspended, zero credit).
    pub fn new(n: usize) -> Self {
        Self {
            suspended: vec![false; n],
            credit: vec![0.0; n],
        }
    }

    fn ensure_len(&mut self, n: usize) {
        if self.suspended.len() != n {
            self.suspended.clear();
            self.suspended.resize(n, false);
            self.credit.clear();
            self.credit.resize(n, 0.0);
        }
    }

    /// True if `node` is currently latched off by a hysteresis policy.
    pub fn is_suspended(&self, node: usize) -> bool {
        self.suspended[node]
    }
}

/// Everything the engine needs to run a battery-gated simulation: the
/// charge state, the harvest trace recharging it, and the participation
/// policy reading it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatterySetup {
    /// Per-node charge state.
    pub state: BatteryState,
    /// Harvest trace recharging the fleet each round.
    pub trace: crate::trace::HarvestTrace,
    /// Fleet-wide participation policy gating training and gossip.
    pub policy: BatteryPolicy,
    /// `Some` overrides `policy` per node: node `i` consults
    /// `node_policies[i]`, letting threshold and duty-cycle devices mix
    /// in one fleet (see [`decide_per_node_into`]). Must hold one policy
    /// per node when set; absent in legacy serialized setups.
    #[serde(default)]
    pub node_policies: Option<Vec<BatteryPolicy>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_node() -> BatteryState {
        BatteryState::with_initial_fraction(vec![10.0, 4.0], 0.5)
    }

    #[test]
    fn recharge_clips_at_capacity_and_counts_waste() {
        let mut b = two_node();
        assert_eq!(b.recharge(0, 3.0), 3.0);
        assert_eq!(b.charge_wh(0), 8.0);
        // 4 offered, only 2 fit
        assert_eq!(b.recharge(0, 4.0), 2.0);
        assert_eq!(b.charge_wh(0), 10.0);
        assert_eq!(b.node_harvested_wh(0), 7.0);
        assert_eq!(b.node_wasted_wh(0), 2.0);
        // node 1 untouched
        assert_eq!(b.node_harvested_wh(1), 0.0);
    }

    #[test]
    fn drain_clamps_at_empty_and_counts_deficit() {
        let mut b = two_node();
        assert_eq!(b.drain(1, 1.5), 1.5);
        assert_eq!(b.charge_wh(1), 0.5);
        // 2.0 demanded, 0.5 available
        assert_eq!(b.drain(1, 2.0), 0.5);
        assert_eq!(b.charge_wh(1), 0.0);
        assert_eq!(b.node_drained_wh(1), 2.0);
        assert_eq!(b.node_deficit_wh(1), 1.5);
    }

    #[test]
    fn drain_all_burns_remaining_charge() {
        let mut b = two_node();
        assert_eq!(b.drain_all(0), 5.0);
        assert_eq!(b.charge_wh(0), 0.0);
        assert_eq!(b.node_drained_wh(0), 5.0);
        assert_eq!(b.drain_all(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = BatteryState::new(vec![1.0, 0.0]);
    }

    #[test]
    fn threshold_policy_matches_fraction() {
        let mut b = two_node(); // both at 50%
        let policy = BatteryPolicy::Threshold { min_fraction: 0.4 };
        let mut ps = ParticipationState::new(2);
        let mut active = Vec::new();
        policy.decide_into(&b, &mut ps, &mut active);
        assert_eq!(active, vec![true, true]);
        b.drain(0, 2.0); // node 0 to 30%
        policy.decide_into(&b, &mut ps, &mut active);
        assert_eq!(active, vec![false, true]);
    }

    #[test]
    fn hysteresis_latches_until_resume_band() {
        let mut b = BatteryState::with_initial_fraction(vec![10.0], 0.5);
        let policy = BatteryPolicy::Hysteresis {
            suspend_fraction: 0.3,
            resume_fraction: 0.6,
        };
        let mut ps = ParticipationState::new(1);
        let mut active = Vec::new();
        policy.decide_into(&b, &mut ps, &mut active);
        assert!(active[0], "50% is above the suspend band");
        b.drain(0, 3.0); // 20% → suspend
        policy.decide_into(&b, &mut ps, &mut active);
        assert!(!active[0]);
        b.recharge(0, 2.0); // 40%: above suspend but below resume → stays off
        policy.decide_into(&b, &mut ps, &mut active);
        assert!(!active[0], "hysteresis must latch below the resume band");
        b.recharge(0, 2.5); // 65% → resumes
        policy.decide_into(&b, &mut ps, &mut active);
        assert!(active[0]);
    }

    #[test]
    fn duty_cycle_fires_proportionally_to_charge() {
        // a node pinned at 25% of a 50% target should fire every 2nd round
        let b = BatteryState::with_initial_fraction(vec![8.0], 0.25);
        let policy = BatteryPolicy::DutyCycle {
            target_fraction: 0.5,
        };
        let mut ps = ParticipationState::new(1);
        let mut active = Vec::new();
        let mut fired = 0;
        for _ in 0..20 {
            policy.decide_into(&b, &mut ps, &mut active);
            fired += active[0] as usize;
        }
        assert_eq!(fired, 10, "25%/50% duty must fire exactly half the rounds");
    }

    #[test]
    fn always_on_only_needs_nonzero_charge() {
        let mut b = BatteryState::with_initial_fraction(vec![5.0], 0.01);
        let mut ps = ParticipationState::new(1);
        let mut active = Vec::new();
        BatteryPolicy::AlwaysOn.decide_into(&b, &mut ps, &mut active);
        assert!(active[0]);
        b.drain_all(0);
        BatteryPolicy::AlwaysOn.decide_into(&b, &mut ps, &mut active);
        assert!(!active[0]);
    }

    #[test]
    fn per_node_policies_mix_in_one_fleet() {
        // node 0: strict threshold (50% charge < 60% bar → off);
        // node 1: duty-cycle at half its target → fires every 2nd round
        let b = BatteryState::with_initial_fraction(vec![10.0, 10.0], 0.5);
        let policies = vec![
            BatteryPolicy::Threshold { min_fraction: 0.6 },
            BatteryPolicy::DutyCycle {
                target_fraction: 1.0,
            },
        ];
        let mut ps = ParticipationState::new(2);
        let mut active = Vec::new();
        let mut node1_fired = 0;
        for _ in 0..10 {
            decide_per_node_into(&policies, &b, &mut ps, &mut active);
            assert!(!active[0], "node 0's threshold policy must gate it off");
            node1_fired += active[1] as usize;
        }
        assert_eq!(node1_fired, 5, "node 1 duty-cycles independently");
    }

    #[test]
    fn uniform_per_node_policies_match_the_fleet_wide_mask() {
        let mut b = two_node();
        b.drain(0, 2.0);
        let policy = BatteryPolicy::Hysteresis {
            suspend_fraction: 0.35,
            resume_fraction: 0.6,
        };
        let policies = vec![policy, policy];
        let (mut ps_a, mut ps_b) = (ParticipationState::new(2), ParticipationState::new(2));
        let (mut a, mut v) = (Vec::new(), Vec::new());
        for _ in 0..5 {
            policy.decide_into(&b, &mut ps_a, &mut a);
            decide_per_node_into(&policies, &b, &mut ps_b, &mut v);
            assert_eq!(a, v);
            assert_eq!(ps_a, ps_b);
            b.recharge(0, 0.7);
        }
    }

    #[test]
    #[should_panic(expected = "one policy per node")]
    fn per_node_policy_arity_is_enforced() {
        let b = two_node();
        let mut ps = ParticipationState::new(2);
        let mut active = Vec::new();
        decide_per_node_into(&[BatteryPolicy::AlwaysOn], &b, &mut ps, &mut active);
    }

    #[test]
    fn state_round_trips_through_serde() {
        let mut b = two_node();
        b.recharge(0, 7.0);
        b.drain(1, 3.0);
        let json = serde_json::to_string(&b).unwrap();
        let back: BatteryState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }

    // Conservation: charge = initial + (harvested − wasted) − drained,
    // clamped inside [0, capacity], for any op sequence.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_charge_is_conserved(
            capacity in 0.5f64..20.0,
            initial in 0.0f64..1.0,
            kinds in proptest::collection::vec(0u8..3, 1..60),
            amounts in proptest::collection::vec(0.0f64..5.0, 1..60)
        ) {
            let mut b = BatteryState::with_initial_fraction(vec![capacity], initial);
            for (&kind, &amount) in kinds.iter().zip(&amounts) {
                match kind {
                    0 => { b.recharge(0, amount); }
                    1 => { b.drain(0, amount); }
                    _ => { b.drain_all(0); }
                }
                let expected = b.initial_wh(0) + (b.node_harvested_wh(0) - b.node_wasted_wh(0))
                    - b.node_drained_wh(0);
                prop_assert!((b.charge_wh(0) - expected).abs() < 1e-9,
                    "conservation violated: charge {} vs expected {}", b.charge_wh(0), expected);
                prop_assert!(b.charge_wh(0) >= 0.0);
                prop_assert!(b.charge_wh(0) <= b.capacity_wh(0) + 1e-12);
            }
        }
    }
}
