//! Communication-energy model.
//!
//! §1 of the paper quantifies the asymmetry SkipTrain exploits: on a 256-node
//! D-PSGD run over CIFAR-10, training consumes 1.51 kWh while sharing +
//! aggregation consume about 7 Wh — a >200× gap. This module models
//! per-byte radio energy, fitted so that exactly that scenario reproduces
//! the 7 Wh figure, and is used by the ledger to account communication
//! energy for every algorithm.

use serde::{Deserialize, Serialize};

/// Fixed framing overhead of a model message on the wire: magic, codec id,
/// sender id, round, length, checksum (4 bytes each). Kept in sync with the
/// engine's frame layout (`skiptrain-engine::transport`), which asserts the
/// equality in its tests.
pub const FRAME_OVERHEAD_BYTES: u64 = 24;

/// Bytes on the wire for an *uncompressed* (dense f32) model of `params`
/// parameters, including the framing overhead. Compressed codecs have their
/// own per-message sizes — see `ModelCodec::message_bytes` in the engine.
pub fn model_message_bytes(params: usize) -> u64 {
    params as u64 * 4 + FRAME_OVERHEAD_BYTES
}

/// Energy cost of moving bytes on a smartphone radio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommEnergyModel {
    /// Energy to transmit one byte, joules.
    pub tx_joules_per_byte: f64,
    /// Energy to receive one byte, joules.
    pub rx_joules_per_byte: f64,
}

impl CommEnergyModel {
    /// Fit to the paper's §1 scenario: 256 nodes, 1000 rounds, 6-regular
    /// topology, CIFAR-10 model (89 834 params) → ≈ 7 Wh total for sharing
    /// and aggregation. Per-byte cost lands at ≈ 22.8 nJ/B each way, within
    /// the measured range for modern Wi-Fi/5G radios.
    pub fn paper_fit() -> Self {
        // directed messages per round = nodes · degree, each counted once as
        // tx and once as rx: 7 Wh = 25 200 J over 2 · 256 · 1000 · 6 ·
        // ≈359 400 bytes → 22.8 nJ/B per direction
        Self {
            tx_joules_per_byte: 22.8e-9,
            rx_joules_per_byte: 22.8e-9,
        }
    }

    /// Energy (Wh) for one node to send one model to one neighbor.
    pub fn tx_energy_wh(&self, bytes: u64) -> f64 {
        self.tx_joules_per_byte * bytes as f64 / 3600.0
    }

    /// Energy (Wh) for one node to receive one model from one neighbor.
    pub fn rx_energy_wh(&self, bytes: u64) -> f64 {
        self.rx_joules_per_byte * bytes as f64 / 3600.0
    }

    /// Total communication energy (Wh) for a full synchronous round where
    /// each of `n` nodes exchanges a `params`-sized model with `degree`
    /// neighbors (each edge carries one message in each direction).
    pub fn round_energy_wh(&self, n: usize, degree: usize, params: usize) -> f64 {
        let bytes = model_message_bytes(params);
        let per_node =
            self.tx_energy_wh(bytes) * degree as f64 + self.rx_energy_wh(bytes) * degree as f64;
        per_node * n as f64
    }
}

impl Default for CommEnergyModel {
    fn default() -> Self {
        Self::paper_fit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_reproduces_seven_wh() {
        let m = CommEnergyModel::paper_fit();
        let total: f64 = (0..1000).map(|_| m.round_energy_wh(256, 6, 89_834)).sum();
        assert!(
            (total - 7.0).abs() < 0.35,
            "1000-round comm energy {total} Wh should be ≈ 7 Wh"
        );
    }

    #[test]
    fn training_vs_comm_ratio_exceeds_two_hundred() {
        // §1: training 1.51 kWh vs comm 7 Wh → > 200×.
        use crate::device::fleet;
        use crate::trace::{round_energy_wh, WorkloadSpec};
        let devices = fleet(256);
        let w = WorkloadSpec::cifar10();
        let train_total: f64 = (0..1000)
            .map(|_| -> f64 {
                devices
                    .iter()
                    .map(|d| round_energy_wh(&d.profile(), &w))
                    .sum()
            })
            .sum();
        let m = CommEnergyModel::paper_fit();
        let comm_total: f64 = (0..1000)
            .map(|_| m.round_energy_wh(256, 6, w.model_params))
            .sum();
        let ratio = train_total / comm_total;
        assert!(
            ratio > 200.0,
            "training/comm ratio {ratio} should exceed 200"
        );
        // and the training total should be near the paper's 1.51 kWh
        assert!(
            (train_total - 1510.0).abs() < 80.0,
            "training total {train_total} Wh should be ≈ 1.51 kWh"
        );
    }

    #[test]
    fn message_bytes_dominated_by_params() {
        assert_eq!(model_message_bytes(0), FRAME_OVERHEAD_BYTES);
        assert_eq!(
            model_message_bytes(89_834),
            89_834 * 4 + FRAME_OVERHEAD_BYTES
        );
    }

    #[test]
    fn round_energy_scales_with_degree() {
        let m = CommEnergyModel::paper_fit();
        let e6 = m.round_energy_wh(100, 6, 10_000);
        let e12 = m.round_energy_wh(100, 12, 10_000);
        assert!((e12 / e6 - 2.0).abs() < 1e-9);
    }
}
