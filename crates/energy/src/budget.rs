//! Per-node training-round budgets for the constrained setting (§3.2).
//!
//! Node `i` may perform at most `τ_i` training rounds before its battery
//! budget is exhausted. The tracker enforces the budget and exposes the
//! remaining counts the SkipTrain-constrained policy needs to compute its
//! training probabilities (Eq. 5).

use serde::{Deserialize, Serialize};

/// Tracks remaining training rounds per node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetTracker {
    initial: Vec<u32>,
    remaining: Vec<u32>,
}

impl BudgetTracker {
    /// Creates a tracker from per-node budgets τ.
    pub fn new(budgets: Vec<u32>) -> Self {
        Self {
            remaining: budgets.clone(),
            initial: budgets,
        }
    }

    /// An effectively unlimited tracker (unconstrained setting).
    pub fn unlimited(n: usize) -> Self {
        Self::new(vec![u32::MAX; n])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.remaining.len()
    }

    /// True for zero nodes.
    pub fn is_empty(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Initial budget τ of `node`.
    pub fn initial(&self, node: usize) -> u32 {
        self.initial[node]
    }

    /// Rounds still available to `node`.
    pub fn remaining(&self, node: usize) -> u32 {
        self.remaining[node]
    }

    /// True if `node` can still train.
    pub fn can_train(&self, node: usize) -> bool {
        self.remaining[node] > 0
    }

    /// Consumes one training round if available; returns whether it was.
    pub fn try_consume(&mut self, node: usize) -> bool {
        if self.remaining[node] > 0 {
            self.remaining[node] -= 1;
            true
        } else {
            false
        }
    }

    /// Training rounds consumed by `node` so far.
    pub fn consumed(&self, node: usize) -> u32 {
        self.initial[node] - self.remaining[node]
    }

    /// Sum of consumed rounds over all nodes.
    pub fn total_consumed(&self) -> u64 {
        (0..self.len()).map(|i| self.consumed(i) as u64).sum()
    }

    /// Fraction of nodes whose budget is exhausted.
    pub fn exhausted_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.remaining.iter().filter(|&&r| r == 0).count() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_until_exhausted() {
        let mut t = BudgetTracker::new(vec![2, 0]);
        assert!(t.can_train(0));
        assert!(!t.can_train(1));
        assert!(t.try_consume(0));
        assert!(t.try_consume(0));
        assert!(!t.try_consume(0), "budget must not go negative");
        assert_eq!(t.consumed(0), 2);
        assert_eq!(t.remaining(0), 0);
    }

    #[test]
    fn unlimited_never_exhausts() {
        let mut t = BudgetTracker::unlimited(1);
        for _ in 0..10_000 {
            assert!(t.try_consume(0));
        }
        assert!(t.can_train(0));
    }

    #[test]
    fn aggregate_statistics() {
        let mut t = BudgetTracker::new(vec![1, 3]);
        t.try_consume(0);
        t.try_consume(1);
        assert_eq!(t.total_consumed(), 2);
        assert_eq!(t.exhausted_fraction(), 0.5);
    }
}
