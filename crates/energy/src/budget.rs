//! Per-node training-round budgets for the constrained setting (§3.2).
//!
//! Node `i` may perform at most `τ_i` training rounds before its battery
//! budget is exhausted. The tracker enforces the budget and exposes the
//! remaining counts the SkipTrain-constrained policy needs to compute its
//! training probabilities (Eq. 5).
//!
//! # Units
//!
//! The paper defines budgets as *integer round counts* (τ of §4.2), and
//! exact integer semantics are what keep the Table 2 budget tests exact —
//! so the `u32` counters remain authoritative here. They are, however,
//! unit-inconsistent with the Wh-denominated [`crate::ledger::EnergyLedger`]:
//! τ rounds mean different energy on different devices. The bridge is
//! [`BudgetTracker::with_round_costs`], which attaches each node's
//! per-round training cost and mirrors every consume into an embedded
//! [`BatteryState`] (capacity `τ_i · c_i`, no harvest), giving Wh-valued
//! views ([`BudgetTracker::remaining_wh`], [`BudgetTracker::consumed_wh`])
//! that stay consistent with the integer counts by construction. Trackers
//! built with the legacy [`BudgetTracker::new`] carry no cost information
//! and report no Wh view — they count unit-less rounds, as before.

use crate::battery::BatteryState;
use serde::{Deserialize, Serialize};

/// Tracks remaining training rounds per node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetTracker {
    initial: Vec<u32>,
    remaining: Vec<u32>,
    /// Per-node training cost per round, Wh (empty for unit-less trackers).
    #[serde(default)]
    round_cost_wh: Vec<f64>,
    /// Wh mirror of the integer counters, when costs are known.
    #[serde(default)]
    wh: Option<BatteryState>,
}

impl BudgetTracker {
    /// Creates a tracker from per-node budgets τ.
    ///
    /// The budgets are unit-less round counts; use
    /// [`BudgetTracker::with_round_costs`] to attach Wh semantics.
    pub fn new(budgets: Vec<u32>) -> Self {
        Self {
            remaining: budgets.clone(),
            initial: budgets,
            round_cost_wh: Vec::new(),
            wh: None,
        }
    }

    /// Creates a tracker whose integer budgets are bridged to watt-hours:
    /// `round_cost_wh[i]` is node `i`'s per-round training energy, so the
    /// node's budget is worth `τ_i · c_i` Wh, drained `c_i` per consumed
    /// round through an embedded [`BatteryState`] (no harvest).
    ///
    /// # Panics
    /// Panics if the two vectors disagree in length or any cost is
    /// non-finite or negative. A node with `τ_i = 0` or zero cost is
    /// representable (its Wh view is simply empty from the start).
    pub fn with_round_costs(budgets: Vec<u32>, round_cost_wh: Vec<f64>) -> Self {
        assert_eq!(
            budgets.len(),
            round_cost_wh.len(),
            "one round cost per node required"
        );
        assert!(
            round_cost_wh.iter().all(|c| c.is_finite() && *c >= 0.0),
            "round costs must be non-negative and finite"
        );
        // BatteryState requires positive capacities; an exhausted or free
        // node still needs a slot, so floor capacity at a tiny epsilon and
        // charge it with the true Wh budget.
        let capacity: Vec<f64> = budgets
            .iter()
            .zip(&round_cost_wh)
            .map(|(&t, &c)| (t as f64 * c).max(f64::MIN_POSITIVE))
            .collect();
        let mut wh = BatteryState::new(capacity);
        // nodes with zero budget start with their (epsilon) charge burned
        for (i, &budget) in budgets.iter().enumerate() {
            if budget == 0 {
                wh.drain_all(i);
            }
        }
        Self {
            remaining: budgets.clone(),
            initial: budgets,
            round_cost_wh,
            wh: Some(wh),
        }
    }

    /// An effectively unlimited tracker (unconstrained setting).
    pub fn unlimited(n: usize) -> Self {
        Self::new(vec![u32::MAX; n])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.remaining.len()
    }

    /// True for zero nodes.
    pub fn is_empty(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Initial budget τ of `node`.
    pub fn initial(&self, node: usize) -> u32 {
        self.initial[node]
    }

    /// Rounds still available to `node`.
    pub fn remaining(&self, node: usize) -> u32 {
        self.remaining[node]
    }

    /// True if `node` can still train.
    pub fn can_train(&self, node: usize) -> bool {
        self.remaining[node] > 0
    }

    /// Consumes one training round if available; returns whether it was.
    pub fn try_consume(&mut self, node: usize) -> bool {
        if self.remaining[node] > 0 {
            self.remaining[node] -= 1;
            if let Some(wh) = &mut self.wh {
                wh.drain(node, self.round_cost_wh[node]);
            }
            true
        } else {
            false
        }
    }

    /// Training rounds consumed by `node` so far.
    pub fn consumed(&self, node: usize) -> u32 {
        self.initial[node] - self.remaining[node]
    }

    /// Sum of consumed rounds over all nodes.
    pub fn total_consumed(&self) -> u64 {
        (0..self.len()).map(|i| self.consumed(i) as u64).sum()
    }

    /// Fraction of nodes whose budget is exhausted.
    pub fn exhausted_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.remaining.iter().filter(|&&r| r == 0).count() as f64 / self.len() as f64
    }

    /// True when this tracker carries Wh semantics (built via
    /// [`BudgetTracker::with_round_costs`]).
    pub fn has_wh_bridge(&self) -> bool {
        self.wh.is_some()
    }

    /// Per-round training cost of `node`, Wh (`None` for unit-less
    /// trackers).
    pub fn round_cost_wh(&self, node: usize) -> Option<f64> {
        self.round_cost_wh.get(node).copied()
    }

    /// Wh worth of `node`'s initial budget (`τ_i · c_i`); `None` for
    /// unit-less trackers.
    pub fn initial_wh(&self, node: usize) -> Option<f64> {
        self.round_cost_wh
            .get(node)
            .map(|c| self.initial[node] as f64 * c)
    }

    /// Wh still available to `node`; `None` for unit-less trackers.
    pub fn remaining_wh(&self, node: usize) -> Option<f64> {
        self.round_cost_wh
            .get(node)
            .map(|c| self.remaining[node] as f64 * c)
    }

    /// Wh consumed by `node` so far (as drained through the embedded
    /// battery view); `None` for unit-less trackers.
    pub fn consumed_wh(&self, node: usize) -> Option<f64> {
        self.wh.as_ref().map(|wh| wh.node_drained_wh(node))
    }

    /// Sum of Wh consumed over all nodes; `None` for unit-less trackers.
    pub fn total_consumed_wh(&self) -> Option<f64> {
        self.wh.as_ref().map(|wh| wh.total_drained_wh())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_until_exhausted() {
        let mut t = BudgetTracker::new(vec![2, 0]);
        assert!(t.can_train(0));
        assert!(!t.can_train(1));
        assert!(t.try_consume(0));
        assert!(t.try_consume(0));
        assert!(!t.try_consume(0), "budget must not go negative");
        assert_eq!(t.consumed(0), 2);
        assert_eq!(t.remaining(0), 0);
    }

    #[test]
    fn unlimited_never_exhausts() {
        let mut t = BudgetTracker::unlimited(1);
        for _ in 0..10_000 {
            assert!(t.try_consume(0));
        }
        assert!(t.can_train(0));
    }

    #[test]
    fn aggregate_statistics() {
        let mut t = BudgetTracker::new(vec![1, 3]);
        t.try_consume(0);
        t.try_consume(1);
        assert_eq!(t.total_consumed(), 2);
        assert_eq!(t.exhausted_fraction(), 0.5);
    }

    #[test]
    fn legacy_tracker_has_no_wh_view() {
        let t = BudgetTracker::new(vec![5]);
        assert!(!t.has_wh_bridge());
        assert_eq!(t.remaining_wh(0), None);
        assert_eq!(t.consumed_wh(0), None);
        assert_eq!(t.total_consumed_wh(), None);
    }

    #[test]
    fn wh_bridge_mirrors_integer_consumption() {
        let mut t = BudgetTracker::with_round_costs(vec![3, 2], vec![0.5, 0.25]);
        assert!(t.has_wh_bridge());
        assert_eq!(t.initial_wh(0), Some(1.5));
        assert_eq!(t.initial_wh(1), Some(0.5));
        t.try_consume(0);
        t.try_consume(1);
        t.try_consume(1);
        assert!(!t.try_consume(1), "integer semantics stay authoritative");
        assert!((t.consumed_wh(0).unwrap() - 0.5).abs() < 1e-12);
        assert!((t.consumed_wh(1).unwrap() - 0.5).abs() < 1e-12);
        assert!((t.remaining_wh(0).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(t.remaining_wh(1), Some(0.0));
        assert!((t.total_consumed_wh().unwrap() - 1.0).abs() < 1e-12);
        // Wh view always equals count × cost — consistent by construction
        for i in 0..2 {
            let by_count = t.consumed(i) as f64 * t.round_cost_wh(i).unwrap();
            assert!((t.consumed_wh(i).unwrap() - by_count).abs() < 1e-12);
        }
    }

    #[test]
    fn wh_bridge_handles_zero_budgets_and_free_nodes() {
        let mut t = BudgetTracker::with_round_costs(vec![0, 4], vec![0.3, 0.0]);
        assert!(!t.try_consume(0));
        assert_eq!(t.remaining_wh(0), Some(0.0));
        // a zero-cost node trains for free in Wh terms
        assert!(t.try_consume(1));
        assert_eq!(t.consumed_wh(1), Some(0.0));
    }

    #[test]
    fn legacy_json_without_wh_fields_stays_loadable() {
        // the pre-bridge wire shape: only the integer counters
        let json = r#"{"initial":[4,2],"remaining":[3,0]}"#;
        let t: BudgetTracker = serde_json::from_str(json).unwrap();
        assert_eq!(t.initial(0), 4);
        assert_eq!(t.remaining(1), 0);
        assert!(!t.has_wh_bridge());
        assert_eq!(t.remaining_wh(0), None);
    }
}
