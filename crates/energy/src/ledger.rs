//! Per-node energy accounting (Eq. 2 and Eq. 3).
//!
//! The ledger accumulates training and communication energy per node and
//! per round; Eq. 3's total is the sum over both axes. Communication energy
//! is recorded as *per-message events* ([`EnergyLedger::record_tx`] /
//! [`EnergyLedger::record_rx`]) carrying the actual wire bytes of each
//! message, so the ledger also exposes byte counters — the engine charges
//! exactly the edges that fired in a round, not an analytic degree formula.
//! The bench harness reads the series out for the accuracy-vs-energy plots
//! (Figures 5 and 6).

use crate::comm::CommEnergyModel;
use serde::{Deserialize, Serialize};

/// Accumulated energy per node, split by cause.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyLedger {
    training_wh: Vec<f64>,
    comm_wh: Vec<f64>,
    /// Bytes transmitted per node (attempted sends).
    tx_bytes: Vec<u64>,
    /// Bytes received per node (delivered messages only).
    rx_bytes: Vec<u64>,
    /// Cumulative total (training + comm) after each closed round.
    round_totals_wh: Vec<f64>,
    /// Virtual-time tick each closed round ended at, parallel to
    /// `round_totals_wh`. Rounds closed without a timestamp
    /// ([`EnergyLedger::end_round`]) advance the last stamp by one, so
    /// untimed runs read as one tick per round. Missing in legacy
    /// serialized ledgers.
    #[serde(default)]
    round_end_ticks: Vec<u64>,
    /// Energy recorded in the currently open round.
    open_round_wh: f64,
}

impl EnergyLedger {
    /// Creates a ledger for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            training_wh: vec![0.0; n],
            comm_wh: vec![0.0; n],
            tx_bytes: vec![0; n],
            rx_bytes: vec![0; n],
            // The per-round history series grow for the life of the run;
            // seeding their capacity keeps steady-state rounds free of
            // amortized doubling reallocations (the round loop's
            // allocation proxy pins 0 B/round) for typical horizons.
            round_totals_wh: Vec::with_capacity(512),
            round_end_ticks: Vec::with_capacity(512),
            open_round_wh: 0.0,
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.training_wh.len()
    }

    /// True when tracking zero nodes.
    pub fn is_empty(&self) -> bool {
        self.training_wh.is_empty()
    }

    /// Records training energy for a node (Wh).
    pub fn record_training(&mut self, node: usize, wh: f64) {
        debug_assert!(wh >= 0.0, "negative energy");
        self.training_wh[node] += wh;
        self.open_round_wh += wh;
    }

    /// Records communication energy for a node (Wh).
    pub fn record_comm(&mut self, node: usize, wh: f64) {
        debug_assert!(wh >= 0.0, "negative energy");
        self.comm_wh[node] += wh;
        self.open_round_wh += wh;
    }

    /// Records one transmitted message of `bytes` wire bytes: charges
    /// `node` the radio's per-byte transmit energy and bumps its byte
    /// counter. Transmission is charged per *attempt* — a dropped message
    /// still cost its sender the radio energy.
    pub fn record_tx(&mut self, node: usize, bytes: u64, comm: &CommEnergyModel) {
        self.tx_bytes[node] += bytes;
        self.record_comm(node, comm.tx_energy_wh(bytes));
    }

    /// Records one received (delivered) message of `bytes` wire bytes:
    /// charges `node` the radio's per-byte receive energy and bumps its
    /// byte counter.
    pub fn record_rx(&mut self, node: usize, bytes: u64, comm: &CommEnergyModel) {
        self.rx_bytes[node] += bytes;
        self.record_comm(node, comm.rx_energy_wh(bytes));
    }

    /// Bytes transmitted by `node` so far (attempted sends).
    pub fn node_tx_bytes(&self, node: usize) -> u64 {
        self.tx_bytes[node]
    }

    /// Bytes received by `node` so far (delivered messages).
    pub fn node_rx_bytes(&self, node: usize) -> u64 {
        self.rx_bytes[node]
    }

    /// Total bytes transmitted over all nodes.
    pub fn total_tx_bytes(&self) -> u64 {
        self.tx_bytes.iter().sum()
    }

    /// Total bytes received (delivered) over all nodes.
    pub fn total_rx_bytes(&self) -> u64 {
        self.rx_bytes.iter().sum()
    }

    /// Closes the current round, pushing the cumulative total onto the
    /// per-round series. The round is stamped one virtual tick after the
    /// previous close; event-driven executions use
    /// [`EnergyLedger::end_round_at`] instead to stamp the real virtual
    /// round-end time.
    pub fn end_round(&mut self) {
        let next = self.round_end_ticks.last().map_or(1, |&t| t + 1);
        self.end_round_at(next);
    }

    /// Closes the current round at virtual tick `ticks` (from the event
    /// engine's clock). Timestamps are pure metadata over the same energy
    /// sums — conservation (per-node totals vs. the cumulative series) is
    /// unaffected by how rounds are stamped.
    pub fn end_round_at(&mut self, ticks: u64) {
        let prev = self.round_totals_wh.last().copied().unwrap_or(0.0);
        self.round_totals_wh.push(prev + self.open_round_wh);
        self.round_end_ticks.push(ticks);
        self.open_round_wh = 0.0;
    }

    /// Virtual-time tick each closed round ended at, parallel to
    /// [`EnergyLedger::cumulative_by_round`].
    pub fn round_end_ticks(&self) -> &[u64] {
        &self.round_end_ticks
    }

    /// Training energy spent by `node` so far (Wh).
    pub fn node_training_wh(&self, node: usize) -> f64 {
        self.training_wh[node]
    }

    /// Communication energy spent by `node` so far (Wh).
    pub fn node_comm_wh(&self, node: usize) -> f64 {
        self.comm_wh[node]
    }

    /// Total training energy over all nodes (Wh) — the quantity Figures 5/6
    /// plot on the x axis.
    pub fn total_training_wh(&self) -> f64 {
        self.training_wh.iter().sum()
    }

    /// Total communication energy over all nodes (Wh).
    pub fn total_comm_wh(&self) -> f64 {
        self.comm_wh.iter().sum()
    }

    /// Eq. 3: total energy over all nodes and rounds (Wh).
    pub fn total_wh(&self) -> f64 {
        self.total_training_wh() + self.total_comm_wh()
    }

    /// Cumulative total energy after each closed round (Wh).
    pub fn cumulative_by_round(&self) -> &[f64] {
        &self.round_totals_wh
    }

    /// Number of closed rounds.
    pub fn rounds(&self) -> usize {
        self.round_totals_wh.len()
    }

    /// Merges another ledger (e.g. from a parallel shard) into this one.
    ///
    /// Every axis merges exactly once — per-node training/comm energy,
    /// tx/rx byte counters, the cumulative per-round series, and any
    /// still-open round energy — so an observer attached to a merged
    /// ledger sees each recorded event exactly once (no double counting,
    /// and no silently dropped series: an earlier version forgot
    /// `round_totals_wh`/`open_round_wh`, leaving `cumulative_by_round`
    /// stale after a merge). A shard that closed fewer rounds contributes
    /// its final cumulative total to the remaining rounds — its energy
    /// stopped growing there.
    ///
    /// # Panics
    /// Panics if node counts differ.
    pub fn merge(&mut self, other: &EnergyLedger) {
        assert_eq!(self.len(), other.len(), "ledger size mismatch");
        for (a, b) in self.training_wh.iter_mut().zip(&other.training_wh) {
            *a += b;
        }
        for (a, b) in self.comm_wh.iter_mut().zip(&other.comm_wh) {
            *a += b;
        }
        for (a, b) in self.tx_bytes.iter_mut().zip(&other.tx_bytes) {
            *a += b;
        }
        for (a, b) in self.rx_bytes.iter_mut().zip(&other.rx_bytes) {
            *a += b;
        }
        let rounds = self.round_totals_wh.len().max(other.round_totals_wh.len());
        let tail = |series: &[f64]| series.last().copied().unwrap_or(0.0);
        let merged: Vec<f64> = (0..rounds)
            .map(|r| {
                let a = self
                    .round_totals_wh
                    .get(r)
                    .copied()
                    .unwrap_or_else(|| tail(&self.round_totals_wh));
                let b = other
                    .round_totals_wh
                    .get(r)
                    .copied()
                    .unwrap_or_else(|| tail(&other.round_totals_wh));
                a + b
            })
            .collect();
        self.round_totals_wh = merged;
        // Round stamps merge as the elementwise max (a merged round is
        // closed once the last shard closed it); a shard with fewer
        // stamped rounds holds its final stamp — its clock stopped there.
        let tick_rounds = self.round_end_ticks.len().max(other.round_end_ticks.len());
        let tick_tail = |series: &[u64]| series.last().copied().unwrap_or(0);
        let merged_ticks: Vec<u64> = (0..tick_rounds)
            .map(|r| {
                let a = self
                    .round_end_ticks
                    .get(r)
                    .copied()
                    .unwrap_or_else(|| tick_tail(&self.round_end_ticks));
                let b = other
                    .round_end_ticks
                    .get(r)
                    .copied()
                    .unwrap_or_else(|| tick_tail(&other.round_end_ticks));
                a.max(b)
            })
            .collect();
        self.round_end_ticks = merged_ticks;
        self.open_round_wh += other.open_round_wh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_nodes_and_causes() {
        let mut l = EnergyLedger::new(3);
        l.record_training(0, 1.0);
        l.record_training(2, 2.0);
        l.record_comm(1, 0.5);
        assert_eq!(l.total_training_wh(), 3.0);
        assert_eq!(l.total_comm_wh(), 0.5);
        assert_eq!(l.total_wh(), 3.5);
        assert_eq!(l.node_training_wh(2), 2.0);
        assert_eq!(l.node_comm_wh(1), 0.5);
    }

    #[test]
    fn cumulative_series_is_monotone() {
        let mut l = EnergyLedger::new(2);
        l.record_training(0, 1.0);
        l.end_round();
        l.record_comm(1, 0.25);
        l.end_round();
        l.end_round(); // empty round
        assert_eq!(l.cumulative_by_round(), &[1.0, 1.25, 1.25]);
        assert_eq!(l.rounds(), 3);
    }

    #[test]
    fn merge_adds_per_node() {
        let mut a = EnergyLedger::new(2);
        a.record_training(0, 1.0);
        let mut b = EnergyLedger::new(2);
        b.record_training(0, 2.0);
        b.record_comm(1, 3.0);
        a.merge(&b);
        assert_eq!(a.node_training_wh(0), 3.0);
        assert_eq!(a.node_comm_wh(1), 3.0);
    }

    #[test]
    fn tx_rx_events_accumulate_bytes_and_energy() {
        let comm = CommEnergyModel::paper_fit();
        let mut l = EnergyLedger::new(2);
        l.record_tx(0, 1000, &comm);
        l.record_tx(0, 500, &comm);
        l.record_rx(1, 1000, &comm);
        assert_eq!(l.node_tx_bytes(0), 1500);
        assert_eq!(l.node_rx_bytes(0), 0);
        assert_eq!(l.node_rx_bytes(1), 1000);
        assert_eq!(l.total_tx_bytes(), 1500);
        assert_eq!(l.total_rx_bytes(), 1000);
        let expected = comm.tx_energy_wh(1000) + comm.tx_energy_wh(500) + comm.rx_energy_wh(1000);
        assert!((l.total_comm_wh() - expected).abs() < 1e-18);
        assert_eq!(l.total_training_wh(), 0.0);
    }

    #[test]
    fn merge_adds_byte_counters() {
        let comm = CommEnergyModel::paper_fit();
        let mut a = EnergyLedger::new(2);
        a.record_tx(0, 10, &comm);
        let mut b = EnergyLedger::new(2);
        b.record_tx(0, 5, &comm);
        b.record_rx(1, 7, &comm);
        a.merge(&b);
        assert_eq!(a.node_tx_bytes(0), 15);
        assert_eq!(a.node_rx_bytes(1), 7);
    }

    #[test]
    fn merged_shard_ledgers_equal_single_run_bit_for_bit() {
        // Issue-4 satellite audit: shard a known per-message event stream
        // by node (each node's events live in exactly one shard, order
        // preserved) and verify the merged 2-shard ledger equals the
        // single-run ledger bit for bit on every axis an observer can
        // read. The radio rates are chosen so every recorded Wh value is
        // dyadic (bytes/4 and bytes/8), making all f64 sums exact
        // regardless of association — bitwise equality is then a
        // statement about merge semantics, not float luck.
        let comm = CommEnergyModel {
            tx_joules_per_byte: 0.25 * 3600.0,
            rx_joules_per_byte: 0.125 * 3600.0,
        };
        let n = 4;
        let mut single = EnergyLedger::new(n);
        let mut shard_a = EnergyLedger::new(n);
        let mut shard_b = EnergyLedger::new(n);
        for round in 0..3u64 {
            for node in 0..n {
                let shard = if node < 2 { &mut shard_a } else { &mut shard_b };
                let train = 0.25 * (node as f64 + 1.0) * (round as f64 + 1.0);
                single.record_training(node, train);
                shard.record_training(node, train);
                let bytes = 512 * (node as u64 + 1) + round;
                single.record_tx(node, bytes, &comm);
                shard.record_tx(node, bytes, &comm);
                if node != 0 {
                    single.record_rx(node, bytes / 2, &comm);
                    shard.record_rx(node, bytes / 2, &comm);
                }
            }
            single.end_round();
            shard_a.end_round();
            shard_b.end_round();
        }
        // leave one round open in every ledger to cover open_round_wh
        single.record_training(1, 0.125);
        shard_a.record_training(1, 0.125);

        let mut merged = shard_a.clone();
        merged.merge(&shard_b);
        for node in 0..n {
            assert_eq!(
                merged.node_training_wh(node).to_bits(),
                single.node_training_wh(node).to_bits(),
                "training node {node}"
            );
            assert_eq!(
                merged.node_comm_wh(node).to_bits(),
                single.node_comm_wh(node).to_bits(),
                "comm node {node}"
            );
            assert_eq!(merged.node_tx_bytes(node), single.node_tx_bytes(node));
            assert_eq!(merged.node_rx_bytes(node), single.node_rx_bytes(node));
        }
        assert_eq!(merged.rounds(), single.rounds());
        for (r, (a, b)) in merged
            .cumulative_by_round()
            .iter()
            .zip(single.cumulative_by_round())
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "cumulative round {r}");
        }
        assert_eq!(merged.total_wh().to_bits(), single.total_wh().to_bits());
        // closing the open round lands on the same cumulative point too
        merged.end_round();
        single.end_round();
        assert_eq!(
            merged.cumulative_by_round().last().unwrap().to_bits(),
            single.cumulative_by_round().last().unwrap().to_bits()
        );
    }

    #[test]
    fn merge_pads_shorter_round_series_with_its_final_total() {
        let mut a = EnergyLedger::new(1);
        a.record_training(0, 1.0);
        a.end_round();
        a.record_training(0, 2.0);
        a.end_round(); // a: [1, 3]
        let mut b = EnergyLedger::new(1);
        b.record_training(0, 4.0);
        b.end_round(); // b: [4]
        a.merge(&b);
        // b's energy stopped growing after its round 1
        assert_eq!(a.cumulative_by_round(), &[5.0, 7.0]);
        let mut c = EnergyLedger::new(1);
        c.record_training(0, 8.0);
        c.end_round();
        c.end_round(); // c: [8, 8]
        let mut d = EnergyLedger::new(1);
        d.merge(&c); // merging into a fresh ledger adopts the series
        assert_eq!(d.cumulative_by_round(), &[8.0, 8.0]);
    }

    #[test]
    fn round_stamps_default_to_one_tick_per_round() {
        let mut l = EnergyLedger::new(1);
        l.end_round();
        l.end_round();
        l.end_round_at(1_000_000);
        assert_eq!(l.round_end_ticks(), &[1, 2, 1_000_000]);
        assert_eq!(l.rounds(), 3);
    }

    #[test]
    fn timestamped_closes_keep_conservation_and_merge_as_max() {
        let mut a = EnergyLedger::new(1);
        a.record_training(0, 1.0);
        a.end_round_at(100);
        a.record_training(0, 2.0);
        a.end_round_at(250);
        let mut b = EnergyLedger::new(1);
        b.record_training(0, 4.0);
        b.end_round_at(180);
        a.merge(&b);
        // stamps are metadata: the energy series merges exactly as before
        assert_eq!(a.cumulative_by_round(), &[5.0, 7.0]);
        assert_eq!(a.round_end_ticks(), &[180, 250]);
        assert_eq!(
            *a.cumulative_by_round().last().unwrap(),
            a.total_wh(),
            "cumulative series stays conservation-exact under stamping"
        );
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_rejects_size_mismatch() {
        let mut a = EnergyLedger::new(2);
        let b = EnergyLedger::new(3);
        a.merge(&b);
    }
}
