//! Energy substrate for the SkipTrain reproduction.
//!
//! The paper builds smartphone energy traces out of three external sources:
//! the Burnout benchmark (sustained power draw), the AI Benchmark
//! (MobileNet-v2 inference latency) and FedScale (training time ≈ 3×
//! inference time). None of those artifacts are available offline, so this
//! crate encodes per-device constants fitted to plausible hardware values
//! such that the *derived* Table 2 (energy per training round and training-
//! round budgets for four phones × two datasets) matches the published one
//! to within rounding — the derivation pipeline itself follows §2.3/§4.2
//! exactly:
//!
//! ```text
//! t_model  = t_mobilenet · |x| / |mobilenet|          (parameter scaling)
//! Δ_round  = 3 · t_model · E · |ξ|                    (FedScale ×3 rule)
//! E_round  = P_hw · Δ_round                           (Eq. 2)
//! τ        = ⌊battery · fraction / E_round⌋           (§4.2 budget rule)
//! ```
//!
//! Modules: [`device`] (profiles), [`trace`] (the pipeline above),
//! [`comm`] (communication energy, §1's 200× claim), [`ledger`]
//! (per-node accounting, Eq. 3) and [`budget`] (constrained-setting
//! budget tracking).

pub mod budget;
pub mod comm;
pub mod device;
pub mod ledger;
pub mod trace;

pub use budget::BudgetTracker;
pub use device::{DeviceKind, DeviceProfile};
pub use ledger::EnergyLedger;
pub use trace::{round_energy_mwh, training_budget_rounds, WorkloadSpec};
