//! Energy substrate for the SkipTrain reproduction.
//!
//! The paper builds smartphone energy traces out of three external sources:
//! the Burnout benchmark (sustained power draw), the AI Benchmark
//! (MobileNet-v2 inference latency) and FedScale (training time ≈ 3×
//! inference time). None of those artifacts are available offline, so this
//! crate encodes per-device constants fitted to plausible hardware values
//! such that the *derived* Table 2 (energy per training round and training-
//! round budgets for four phones × two datasets) matches the published one
//! to within rounding — the derivation pipeline itself follows §2.3/§4.2
//! exactly:
//!
//! ```text
//! t_model  = t_mobilenet · |x| / |mobilenet|          (parameter scaling)
//! Δ_round  = 3 · t_model · E · |ξ|                    (FedScale ×3 rule)
//! E_round  = P_hw · Δ_round                           (Eq. 2)
//! τ        = ⌊battery · fraction / E_round⌋           (§4.2 budget rule)
//! ```
//!
//! Modules: [`device`] (profiles), [`trace`] (the pipeline above, plus
//! energy-harvesting traces), [`comm`] (communication energy, §1's 200×
//! claim), [`ledger`] (per-node accounting, Eq. 3), [`budget`]
//! (constrained-setting budget tracking, bridged to Wh) and [`battery`]
//! (per-node charge state machines and participation policies).
//!
//! # The battery feedback loop
//!
//! The [`battery`] module turns the crate from a recorder into a
//! controller. Each node owns a charge level (Wh) inside a
//! [`battery::BatteryState`]; a [`trace::HarvestTrace`] recharges it every
//! round (constant, solar-diurnal, or piecewise-from-data power profiles,
//! with deterministic per-node phase jitter), the [`ledger::EnergyLedger`]'s
//! per-node training + tx/rx spend drains it, and a
//! [`battery::BatteryPolicy`] (threshold, hysteresis bands, proportional
//! duty-cycling) decides from the charge fraction whether the node
//! participates — trains *and* gossips — in the next round. Drain and
//! recharge clamp at empty/capacity and every clipped watt-hour is
//! accounted (wasted harvest, unmet deficit), so
//! `charge = initial + harvested − wasted − drained` holds exactly.

pub mod battery;
pub mod budget;
pub mod comm;
pub mod device;
pub mod ledger;
pub mod trace;

pub use battery::{BatteryPolicy, BatterySetup, BatteryState, ParticipationState};
pub use budget::BudgetTracker;
pub use device::{DeviceKind, DeviceProfile};
pub use ledger::EnergyLedger;
pub use trace::{
    round_energy_mwh, training_budget_rounds, HarvestProfile, HarvestTrace, WorkloadSpec,
};
