//! Smartphone device profiles (§4.2, Table 2 of the paper).
//!
//! The paper's evaluation assigns each of the 256 nodes one of four phones,
//! evenly distributed. Per-device constants below are fitted to plausible
//! public hardware characteristics (sustained SoC power, MobileNet-v2 CPU
//! inference latency, battery capacity) such that the derived Table 2
//! matches the published numbers; see `trace::tests` for the enforcement.

use serde::{Deserialize, Serialize};

/// Static physical characteristics of a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing name.
    pub name: String,
    /// Sustained power draw while training (Burnout-style), watts.
    pub power_w: f64,
    /// MobileNet-v2 single-sample inference latency (AI-Benchmark-style),
    /// milliseconds.
    pub mobilenet_inference_ms: f64,
    /// Battery capacity, watt-hours.
    pub battery_wh: f64,
}

/// The four phones of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Xiaomi 12 Pro (Snapdragon 8 Gen 1).
    Xiaomi12Pro,
    /// Samsung Galaxy S22 Ultra (Exynos 2200).
    GalaxyS22Ultra,
    /// OnePlus Nord 2 5G (Dimensity 1200, mid-range).
    OnePlusNord2,
    /// Xiaomi Poco X3 (Snapdragon 732G, older mid-range).
    PocoX3,
}

impl DeviceKind {
    /// All four device kinds in Table 2 order.
    pub const ALL: [DeviceKind; 4] = [
        DeviceKind::Xiaomi12Pro,
        DeviceKind::GalaxyS22Ultra,
        DeviceKind::OnePlusNord2,
        DeviceKind::PocoX3,
    ];

    /// The physical profile of this device.
    pub fn profile(&self) -> DeviceProfile {
        match self {
            DeviceKind::Xiaomi12Pro => DeviceProfile {
                name: "Xiaomi 12 Pro".into(),
                power_w: 8.5,
                mobilenet_inference_ms: 56.5,
                battery_wh: 17.70,
            },
            DeviceKind::GalaxyS22Ultra => DeviceProfile {
                name: "Samsung Galaxy S22 Ultra".into(),
                power_w: 8.0,
                mobilenet_inference_ms: 55.4,
                battery_wh: 19.45,
            },
            DeviceKind::OnePlusNord2 => DeviceProfile {
                name: "OnePlus Nord 2 5G".into(),
                power_w: 4.5,
                mobilenet_inference_ms: 42.69,
                battery_wh: 17.72,
            },
            DeviceKind::PocoX3 => DeviceProfile {
                name: "Xiaomi Poco X3".into(),
                power_w: 6.0,
                mobilenet_inference_ms: 104.6,
                battery_wh: 23.12,
            },
        }
    }
}

/// Assigns devices to `n` nodes, evenly distributed over the four types
/// (§4.2: "we distribute the 256 nodes evenly among the four types").
pub fn fleet(n: usize) -> Vec<DeviceKind> {
    (0..n)
        .map(|i| DeviceKind::ALL[i % DeviceKind::ALL.len()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_profiles_are_distinct() {
        let names: std::collections::HashSet<String> =
            DeviceKind::ALL.iter().map(|d| d.profile().name).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn fleet_is_even_for_multiples_of_four() {
        let f = fleet(256);
        for kind in DeviceKind::ALL {
            assert_eq!(f.iter().filter(|&&k| k == kind).count(), 64);
        }
    }

    #[test]
    fn fleet_handles_non_multiples() {
        let f = fleet(6);
        assert_eq!(f.len(), 6);
        assert_eq!(f[4], DeviceKind::Xiaomi12Pro);
    }

    #[test]
    fn profiles_have_sane_physics() {
        for kind in DeviceKind::ALL {
            let p = kind.profile();
            assert!(
                p.power_w > 1.0 && p.power_w < 20.0,
                "{}: power {}",
                p.name,
                p.power_w
            );
            assert!(
                p.mobilenet_inference_ms > 10.0 && p.mobilenet_inference_ms < 500.0,
                "{}: latency {}",
                p.name,
                p.mobilenet_inference_ms
            );
            assert!(
                p.battery_wh > 5.0 && p.battery_wh < 30.0,
                "{}: battery {}",
                p.name,
                p.battery_wh
            );
        }
    }
}
