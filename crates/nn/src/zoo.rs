//! Model zoo: the architectures used by the paper's evaluation plus the
//! reduced synthetic-scale models used in tests and quick presets.
//!
//! Table 1 of the paper reports two model sizes: |x| = 89 834 for CIFAR-10
//! and |x| = 1 690 046 for FEMNIST. The FEMNIST model here is the standard
//! LEAF CNN (conv5×5/32 → pool → conv5×5/64 → pool → fc512 → fc62), which
//! reproduces the paper's parameter count **exactly**. The paper does not
//! spell out its CIFAR-10 architecture; [`cifar_cnn`] is the closest
//! conventional CNN family (conv5×5/32 → pool → conv5×5/64 → pool → fc10,
//! 94 666 parameters, within 5.4 % of Table 1) and the energy model takes the
//! nominal Table 1 sizes as input, so the energy reproduction is unaffected.

use crate::activations::Relu;
use crate::conv::{Conv2d, MaxPool2d, Shape2d};
use crate::dense::Dense;
use crate::model::Sequential;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Deterministic initializer RNG handed to layer constructors.
pub struct InitRng {
    rng: SmallRng,
}

impl InitRng {
    /// Creates an initializer stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.random_range(lo..hi)
    }
}

/// Declarative model description, serializable for experiment configs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Multi-layer perceptron with ReLU between dense layers;
    /// `dims = [input, hidden..., classes]`.
    Mlp { dims: Vec<usize> },
    /// Softmax regression (a single dense layer).
    Logistic { input_dim: usize, classes: usize },
    /// The CIFAR-10-shaped CNN (3×32×32 input, 10 classes, 94 666 params).
    CifarCnn,
    /// The FEMNIST LEAF CNN (1×28×28 input, 62 classes, 1 690 046 params).
    FemnistCnn,
}

impl ModelKind {
    /// Instantiates the model with deterministic per-seed initialization.
    pub fn build(&self, seed: u64) -> Sequential {
        match self {
            ModelKind::Mlp { dims } => mlp(dims, seed),
            ModelKind::Logistic { input_dim, classes } => {
                logistic_regression(*input_dim, *classes, seed)
            }
            ModelKind::CifarCnn => cifar_cnn(seed),
            ModelKind::FemnistCnn => femnist_cnn(seed),
        }
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        match self {
            ModelKind::Mlp { dims } => dims[0],
            ModelKind::Logistic { input_dim, .. } => *input_dim,
            ModelKind::CifarCnn => 3 * 32 * 32,
            ModelKind::FemnistCnn => 28 * 28,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        match self {
            // lint:allow(no_panic, "mlp() asserts at least two dims before any Mlp model is usable")
            ModelKind::Mlp { dims } => *dims.last().unwrap(),
            ModelKind::Logistic { classes, .. } => *classes,
            ModelKind::CifarCnn => 10,
            ModelKind::FemnistCnn => 62,
        }
    }
}

/// Builds an MLP `dims[0] -> dims[1] -> ... -> dims[last]` with ReLU between
/// dense layers.
///
/// # Panics
/// Panics if fewer than two dims are given.
pub fn mlp(dims: &[usize], seed: u64) -> Sequential {
    assert!(dims.len() >= 2, "mlp needs at least input and output dims");
    let mut init = InitRng::new(seed);
    let mut layers: Vec<Box<dyn crate::Layer>> = Vec::new();
    for (i, pair) in dims.windows(2).enumerate() {
        layers.push(Box::new(Dense::new(pair[0], pair[1], &mut init)));
        if i + 2 < dims.len() {
            layers.push(Box::new(Relu::new(pair[1])));
        }
    }
    Sequential::new(layers)
}

/// Softmax regression: one dense layer from inputs to class logits.
pub fn logistic_regression(input_dim: usize, classes: usize, seed: u64) -> Sequential {
    let mut init = InitRng::new(seed);
    Sequential::new(vec![Box::new(Dense::new(input_dim, classes, &mut init))])
}

/// CIFAR-10-shaped CNN: `conv5×5/32 → relu → pool2 → conv5×5/64 → relu →
/// pool2 → fc(4096→10)`; 94 666 parameters (Table 1 reports 89 834 for the
/// paper's unspecified architecture — within 5.4 %).
pub fn cifar_cnn(seed: u64) -> Sequential {
    let mut init = InitRng::new(seed);
    let s0 = Shape2d::new(3, 32, 32);
    let c1 = Conv2d::new(s0, 32, 5, 1, 2, &mut init);
    let s1 = c1.output_shape();
    let p1 = MaxPool2d::new(s1, 2);
    let s2 = p1.output_shape();
    let c2 = Conv2d::new(s2, 64, 5, 1, 2, &mut init);
    let s3 = c2.output_shape();
    let p2 = MaxPool2d::new(s3, 2);
    let s4 = p2.output_shape();
    let fc = Dense::new(s4.len(), 10, &mut init);
    Sequential::new(vec![
        Box::new(c1),
        Box::new(Relu::new(s1.len())),
        Box::new(p1),
        Box::new(c2),
        Box::new(Relu::new(s3.len())),
        Box::new(p2),
        Box::new(fc),
    ])
}

/// The LEAF FEMNIST CNN: `conv5×5/32 → relu → pool2 → conv5×5/64 → relu →
/// pool2 → fc(3136→512) → relu → fc(512→62)`.
///
/// Parameter count: 832 + 51 264 + 1 606 144 + 31 806 = **1 690 046**,
/// matching Table 1 of the paper exactly.
pub fn femnist_cnn(seed: u64) -> Sequential {
    let mut init = InitRng::new(seed);
    let s0 = Shape2d::new(1, 28, 28);
    let c1 = Conv2d::new(s0, 32, 5, 1, 2, &mut init);
    let s1 = c1.output_shape();
    let p1 = MaxPool2d::new(s1, 2);
    let s2 = p1.output_shape();
    let c2 = Conv2d::new(s2, 64, 5, 1, 2, &mut init);
    let s3 = c2.output_shape();
    let p2 = MaxPool2d::new(s3, 2);
    let s4 = p2.output_shape();
    let fc1 = Dense::new(s4.len(), 512, &mut init);
    let fc2 = Dense::new(512, 62, &mut init);
    Sequential::new(vec![
        Box::new(c1),
        Box::new(Relu::new(s1.len())),
        Box::new(p1),
        Box::new(c2),
        Box::new(Relu::new(s3.len())),
        Box::new(p2),
        Box::new(fc1),
        Box::new(Relu::new(512)),
        Box::new(fc2),
    ])
}

/// Parameter count of the paper's CIFAR-10 model, per Table 1.
pub const PAPER_CIFAR10_PARAMS: usize = 89_834;
/// Parameter count of the paper's FEMNIST model, per Table 1.
pub const PAPER_FEMNIST_PARAMS: usize = 1_690_046;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn femnist_cnn_matches_table1_exactly() {
        let m = femnist_cnn(0);
        assert_eq!(m.param_count(), PAPER_FEMNIST_PARAMS);
    }

    #[test]
    fn cifar_cnn_is_close_to_table1() {
        let m = cifar_cnn(0);
        let rel = (m.param_count() as f64 - PAPER_CIFAR10_PARAMS as f64).abs()
            / PAPER_CIFAR10_PARAMS as f64;
        assert!(
            rel < 0.06,
            "cifar cnn params {} too far from Table 1",
            m.param_count()
        );
    }

    #[test]
    fn mlp_dims_chain_correctly() {
        let m = mlp(&[8, 16, 4], 1);
        assert_eq!(m.input_dim(), 8);
        assert_eq!(m.output_dim(), 4);
        assert_eq!(m.param_count(), (8 * 16 + 16) + (16 * 4 + 4));
    }

    #[test]
    fn logistic_is_single_layer() {
        let m = logistic_regression(10, 3, 1);
        assert_eq!(m.layers().len(), 1);
        assert_eq!(m.param_count(), 33);
    }

    #[test]
    fn model_kind_builds_consistent_shapes() {
        for kind in [
            ModelKind::Mlp {
                dims: vec![6, 12, 5],
            },
            ModelKind::Logistic {
                input_dim: 6,
                classes: 5,
            },
        ] {
            let m = kind.build(3);
            assert_eq!(m.input_dim(), kind.input_dim());
            assert_eq!(m.output_dim(), kind.num_classes());
        }
    }

    #[test]
    fn same_seed_same_model_different_seed_different_model() {
        let a = mlp(&[4, 8, 2], 7);
        let b = mlp(&[4, 8, 2], 7);
        let c = mlp(&[4, 8, 2], 8);
        assert_eq!(a.flat_params(), b.flat_params());
        assert_ne!(a.flat_params(), c.flat_params());
    }
}
