//! Neural-network training substrate for the SkipTrain reproduction.
//!
//! The paper trains CNNs with PyTorch; this crate provides the equivalent
//! machinery from scratch:
//!
//! * [`layer`] — the [`Layer`](layer::Layer) abstraction with manual,
//!   gradient-checked backpropagation,
//! * [`dense`], [`conv`], [`activations`] — the layer implementations used by
//!   the paper's model family (fully-connected, 2-D convolution with im2col,
//!   max-pooling, ReLU),
//! * [`loss`] — fused softmax cross-entropy (the paper's loss) and top-1
//!   accuracy,
//! * [`model`] — [`Sequential`](model::Sequential) models with flat parameter
//!   access: decentralized learning shares and averages *flattened* parameter
//!   vectors, so flatten/unflatten is a first-class operation,
//! * [`sgd`] — plain and momentum SGD,
//! * [`zoo`] — the model family of the evaluation (Table 1): the FEMNIST CNN
//!   reproduces the paper's 1,690,046-parameter model exactly,
//! * [`gradcheck`] — finite-difference gradient verification used by the test
//!   suite.

pub mod activations;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod gradcheck;
pub mod layer;
pub mod loss;
pub mod model;
pub mod sgd;
pub mod zoo;

pub use layer::Layer;
pub use loss::SoftmaxCrossEntropy;
pub use model::Sequential;
pub use sgd::Sgd;
