//! Sequential model container with flat parameter access.
//!
//! Decentralized learning treats a model as an opaque parameter vector `x`
//! that is trained locally, shared with neighbors, and averaged. The
//! [`Sequential`] container therefore makes flatten/unflatten first-class:
//! [`Sequential::copy_params_to`] and [`Sequential::load_params`] move the
//! full parameter vector in and out without any per-layer bookkeeping on the
//! caller's side.

use crate::layer::Layer;
use skiptrain_linalg::Matrix;

/// A stack of layers executed in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Output activation buffer per layer (workhorse, reused across batches).
    acts: Vec<Matrix>,
    /// Ping-pong gradient buffers for the backward sweep.
    gbuf_a: Matrix,
    gbuf_b: Matrix,
    param_count: usize,
}

impl Sequential {
    /// Builds a model from layers.
    ///
    /// # Panics
    /// Panics if `layers` is empty or if consecutive layer dimensions do not
    /// line up.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "model needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_dim(),
                pair[1].input_dim(),
                "layer {} output ({}) does not feed layer {} input ({})",
                pair[0].name(),
                pair[0].output_dim(),
                pair[1].name(),
                pair[1].input_dim()
            );
        }
        let acts = layers.iter().map(|_| Matrix::zeros(0, 0)).collect();
        let param_count = layers.iter().map(|l| l.param_count()).sum();
        Self {
            layers,
            acts,
            gbuf_a: Matrix::zeros(0, 0),
            gbuf_b: Matrix::zeros(0, 0),
            param_count,
        }
    }

    /// Number of input features per sample.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Number of output features (logits) per sample.
    pub fn output_dim(&self) -> usize {
        // lint:allow(no_panic, "provably infallible: the constructor asserts at least one layer")
        self.layers.last().unwrap().output_dim()
    }

    /// Total number of trainable parameters (the paper's `|x|`).
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Read access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Runs the forward pass and returns the logits for the batch.
    ///
    /// With `train = true`, layers cache what the backward pass needs.
    pub fn forward(&mut self, input: &Matrix, train: bool) -> &Matrix {
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "model forward: input dim mismatch"
        );
        let mut src: &Matrix = input;
        for (layer, act) in self.layers.iter_mut().zip(self.acts.iter_mut()) {
            layer.forward(src, act, train);
            src = act;
        }
        // lint:allow(no_panic, "provably infallible: acts is built one-to-one with the non-empty layer stack")
        self.acts.last().unwrap()
    }

    /// Runs the backward sweep from the logit gradient, accumulating
    /// parameter gradients in every layer.
    ///
    /// Must follow a `forward(.., train = true)` on the same batch.
    pub fn backward(&mut self, grad_logits: &Matrix) {
        let Self {
            layers,
            acts,
            gbuf_a,
            gbuf_b,
            ..
        } = self;
        let n = layers.len();
        debug_assert_eq!(acts.len(), n);
        // `cur` receives the gradient w.r.t. the current layer's input;
        // `next` holds the gradient produced by the layer above.
        let mut cur: &mut Matrix = gbuf_a;
        let mut next: &mut Matrix = gbuf_b;
        for (i, layer) in layers.iter_mut().enumerate().rev() {
            if i == n - 1 {
                layer.backward(grad_logits, cur);
            } else {
                layer.backward(&*next, cur);
            }
            std::mem::swap(&mut cur, &mut next);
        }
    }

    /// Zeroes all accumulated parameter gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.grads_mut().fill(0.0);
        }
    }

    /// Copies the flattened parameter vector into `out` (resized to fit).
    pub fn copy_params_to(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.param_count);
        for layer in &self.layers {
            out.extend_from_slice(layer.params());
        }
    }

    /// Returns the flattened parameter vector.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut v = Vec::new();
        self.copy_params_to(&mut v);
        v
    }

    /// Copies the flattened gradient vector into `out` (resized to fit).
    pub fn copy_grads_to(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.param_count);
        for layer in &self.layers {
            out.extend_from_slice(layer.grads());
        }
    }

    /// Loads a flattened parameter vector produced by [`copy_params_to`]
    /// (e.g. an aggregated neighbor model).
    ///
    /// # Panics
    /// Panics if `flat.len() != self.param_count()`.
    pub fn load_params(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count,
            "flat parameter length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            let p = layer.params_mut();
            p.copy_from_slice(&flat[offset..offset + p.len()]);
            offset += p.len();
        }
    }

    /// Visits `(params, grads)` slices of every parameterized layer, in
    /// flatten order — the optimizer hook.
    pub fn for_each_param_block(&mut self, mut f: impl FnMut(&mut [f32], &[f32])) {
        for layer in &mut self.layers {
            let (params, grads) = layer.params_and_grads();
            if !params.is_empty() {
                f(params, grads);
            }
        }
    }

    /// One-line architecture summary, e.g. `dense(64->128) -> relu -> ...`.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .layers
            .iter()
            .map(|l| format!("{}({}->{})", l.name(), l.input_dim(), l.output_dim()))
            .collect();
        format!("{} [{} params]", parts.join(" -> "), self.param_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activations::Relu;
    use crate::dense::Dense;
    use crate::zoo::InitRng;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut init = InitRng::new(seed);
        Sequential::new(vec![
            Box::new(Dense::new(4, 6, &mut init)),
            Box::new(Relu::new(6)),
            Box::new(Dense::new(6, 3, &mut init)),
        ])
    }

    #[test]
    fn param_count_sums_layers() {
        let m = tiny_mlp(1);
        assert_eq!(m.param_count(), (4 * 6 + 6) + (6 * 3 + 3));
    }

    #[test]
    fn forward_produces_logit_shape() {
        let mut m = tiny_mlp(2);
        let x = Matrix::zeros(5, 4);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), (5, 3));
    }

    #[test]
    fn flatten_load_roundtrip() {
        let mut a = tiny_mlp(3);
        let b = tiny_mlp(4);
        assert_ne!(a.flat_params(), b.flat_params());
        let theirs = b.flat_params();
        a.load_params(&theirs);
        assert_eq!(a.flat_params(), theirs);
    }

    #[test]
    fn loaded_params_change_predictions() {
        let mut a = tiny_mlp(5);
        let mut b = tiny_mlp(6);
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.3);
        let ya = a.forward(&x, false).clone();
        let flat_b = b.flat_params();
        a.load_params(&flat_b);
        let ya2 = a.forward(&x, false).clone();
        let yb = b.forward(&x, false).clone();
        assert!(ya.max_abs_diff(&ya2) > 1e-6, "loading params had no effect");
        assert!(
            ya2.max_abs_diff(&yb) < 1e-6,
            "same params must predict identically"
        );
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut m = tiny_mlp(7);
        let x = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let _ = m.forward(&x, true);
        let g = Matrix::full(3, 3, 0.5);
        m.backward(&g);
        let mut grads = Vec::new();
        m.copy_grads_to(&mut grads);
        assert!(
            grads.iter().any(|&v| v != 0.0),
            "backward produced no gradient"
        );
        m.zero_grads();
        m.copy_grads_to(&mut grads);
        assert!(grads.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "does not feed")]
    fn rejects_mismatched_layers() {
        let mut init = InitRng::new(1);
        let _ = Sequential::new(vec![
            Box::new(Dense::new(4, 6, &mut init)),
            Box::new(Dense::new(5, 3, &mut init)),
        ]);
    }

    #[test]
    fn summary_mentions_layers_and_params() {
        let m = tiny_mlp(8);
        let s = m.summary();
        assert!(s.contains("dense(4->6)"));
        assert!(s.contains("relu(6->6)"));
        assert!(s.contains(&format!("{} params", m.param_count())));
    }
}
