//! Softmax cross-entropy loss (the paper's training objective) and top-1
//! accuracy.

use skiptrain_linalg::Matrix;

/// Fused softmax + cross-entropy.
///
/// The fused formulation is numerically stable (log-sum-exp with max
/// subtraction) and has the famously simple gradient
/// `(softmax(logits) - onehot(label)) / batch`.
pub struct SoftmaxCrossEntropy {
    num_classes: usize,
}

impl SoftmaxCrossEntropy {
    /// Creates the loss for `num_classes`-way classification.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        Self { num_classes }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Computes the mean loss over the batch and writes the logit gradient.
    ///
    /// `logits` is `batch × num_classes`; `labels` holds one class id per
    /// sample; `grad` is resized to the logits shape.
    ///
    /// # Panics
    /// Panics on shape mismatch or an out-of-range label.
    pub fn loss_and_grad(&self, logits: &Matrix, labels: &[u32], grad: &mut Matrix) -> f32 {
        let batch = logits.rows();
        assert_eq!(
            logits.cols(),
            self.num_classes,
            "logit width != num_classes"
        );
        assert_eq!(labels.len(), batch, "labels length != batch");
        assert!(batch > 0, "empty batch");
        crate::layer::ensure_shape(grad, batch, self.num_classes);

        let inv_b = 1.0 / batch as f32;
        let mut total = 0.0f64;
        for (r, &raw_label) in labels.iter().enumerate() {
            let row = logits.row(r);
            let label = raw_label as usize;
            assert!(label < self.num_classes, "label {label} out of range");
            let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut sum_exp = 0.0f32;
            let grow = grad.row_mut(r);
            for (g, &v) in grow.iter_mut().zip(row) {
                let e = (v - max).exp();
                *g = e;
                sum_exp += e;
            }
            let inv_sum = 1.0 / sum_exp;
            for g in grow.iter_mut() {
                *g *= inv_sum * inv_b;
            }
            grow[label] -= inv_b;
            // loss = -(logit_y - max - ln Σexp)
            total += -((row[label] - max) as f64 - (sum_exp as f64).ln());
        }
        (total * inv_b as f64) as f32
    }

    /// Mean loss only (no gradient), for evaluation.
    pub fn loss(&self, logits: &Matrix, labels: &[u32]) -> f32 {
        let batch = logits.rows();
        assert_eq!(
            logits.cols(),
            self.num_classes,
            "logit width != num_classes"
        );
        assert_eq!(labels.len(), batch, "labels length != batch");
        assert!(batch > 0, "empty batch");
        let mut total = 0.0f64;
        for (r, &raw_label) in labels.iter().enumerate() {
            let row = logits.row(r);
            let label = raw_label as usize;
            let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let sum_exp: f32 = row.iter().map(|&v| (v - max).exp()).sum();
            total += -((row[label] - max) as f64 - (sum_exp as f64).ln());
        }
        (total / batch as f64) as f32
    }
}

/// Fraction of samples whose argmax logit equals the label (top-1 accuracy).
///
/// # Panics
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Matrix, labels: &[u32]) -> f32 {
    assert_eq!(labels.len(), logits.rows(), "labels length != batch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        if skiptrain_linalg::reduce::argmax(row) == Some(label as usize) {
            correct += 1;
        }
    }
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k_loss() {
        let loss = SoftmaxCrossEntropy::new(4);
        let logits = Matrix::zeros(3, 4);
        let labels = [0u32, 1, 2];
        let mut grad = Matrix::zeros(0, 0);
        let l = loss.loss_and_grad(&logits, &labels, &mut grad);
        assert!((l - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let loss = SoftmaxCrossEntropy::new(3);
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let labels = [2u32, 0];
        let mut grad = Matrix::zeros(0, 0);
        loss.loss_and_grad(&logits, &labels, &mut grad);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sums to {s}");
        }
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let loss = SoftmaxCrossEntropy::new(2);
        let logits = Matrix::from_vec(1, 2, vec![10.0, -10.0]);
        let l = loss.loss(&logits, &[0]);
        assert!(l < 1e-3, "loss {l} not small");
        let l_wrong = loss.loss(&logits, &[1]);
        assert!(l_wrong > 5.0, "wrong-label loss {l_wrong} not large");
    }

    #[test]
    fn loss_is_shift_invariant() {
        let loss = SoftmaxCrossEntropy::new(3);
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        assert!((loss.loss(&a, &[1]) - loss.loss(&b, &[1])).abs() < 1e-4);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = SoftmaxCrossEntropy::new(3);
        let base = vec![0.3f32, -0.2, 0.9];
        let labels = [1u32];
        let mut grad = Matrix::zeros(0, 0);
        loss.loss_and_grad(&Matrix::from_vec(1, 3, base.clone()), &labels, &mut grad);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut plus = base.clone();
            plus[j] += eps;
            let mut minus = base.clone();
            minus[j] -= eps;
            let lp = loss.loss(&Matrix::from_vec(1, 3, plus), &labels);
            let lm = loss.loss(&Matrix::from_vec(1, 3, minus), &labels);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.row(0)[j]).abs() < 1e-3,
                "logit {j}: numeric {num} vs analytic {}",
                grad.row(0)[j]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Matrix::from_vec(3, 2, vec![2.0, 1.0, 0.0, 5.0, 1.0, 1.5]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_label() {
        let loss = SoftmaxCrossEntropy::new(2);
        let logits = Matrix::zeros(1, 2);
        let mut grad = Matrix::zeros(0, 0);
        loss.loss_and_grad(&logits, &[5], &mut grad);
    }
}
