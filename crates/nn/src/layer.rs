//! The layer abstraction.
//!
//! Layers process batch-major activations: a `Matrix` with one sample per
//! row and `features` columns. Convolutional layers interpret the feature
//! axis as a flattened `channels × height × width` volume; because the
//! layout is row-major and contiguous, no reshapes are ever materialized.

use skiptrain_linalg::Matrix;

/// A differentiable layer.
///
/// Contract:
/// * [`forward`](Layer::forward) consumes `input` (`batch × input_dim`) and
///   writes `output` (`batch × output_dim`). When `train` is true the layer
///   may cache whatever it needs for the backward pass.
/// * [`backward`](Layer::backward) consumes `grad_out` (`batch × output_dim`),
///   accumulates parameter gradients internally, and writes `grad_in`
///   (`batch × input_dim`). It must be called after a `forward` with
///   `train = true` on the same batch.
/// * Parameters and their gradients are exposed as single contiguous slices
///   so models can be flattened for gossip exchange without copying
///   layer-by-layer structure around.
pub trait Layer: Send {
    /// Human-readable layer kind, used in model summaries.
    fn name(&self) -> &'static str;

    /// Number of input features per sample.
    fn input_dim(&self) -> usize;

    /// Number of output features per sample.
    fn output_dim(&self) -> usize;

    /// Forward pass. See trait docs for the buffer contract.
    fn forward(&mut self, input: &Matrix, output: &mut Matrix, train: bool);

    /// Backward pass. See trait docs for the buffer contract.
    fn backward(&mut self, grad_out: &Matrix, grad_in: &mut Matrix);

    /// Flat view of the trainable parameters (empty for stateless layers).
    fn params(&self) -> &[f32] {
        &[]
    }

    /// Mutable flat view of the trainable parameters.
    fn params_mut(&mut self) -> &mut [f32] {
        &mut []
    }

    /// Flat view of the parameter gradients, aligned with [`params`](Layer::params).
    fn grads(&self) -> &[f32] {
        &[]
    }

    /// Mutable flat view of the parameter gradients.
    fn grads_mut(&mut self) -> &mut [f32] {
        &mut []
    }

    /// Mutable parameters together with their (read-only) gradients, for the
    /// optimizer update. Layers with state implement this as a disjoint
    /// field borrow; stateless layers return empty slices.
    fn params_and_grads(&mut self) -> (&mut [f32], &[f32]) {
        (&mut [], &[])
    }

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        self.params().len()
    }
}

/// Resizes `m` to `rows × cols` if needed, reusing the allocation when the
/// total element count already matches.
pub(crate) fn ensure_shape(m: &mut Matrix, rows: usize, cols: usize) {
    if m.shape() != (rows, cols) {
        // capacity-preserving: a scratch matrix cycled across layer widths
        // (e.g. the model's two backward gradient buffers) stops
        // reallocating once it has seen the largest shape
        m.resize_zeroed(rows, cols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stateless;
    impl Layer for Stateless {
        fn name(&self) -> &'static str {
            "stateless"
        }
        fn input_dim(&self) -> usize {
            3
        }
        fn output_dim(&self) -> usize {
            3
        }
        fn forward(&mut self, input: &Matrix, output: &mut Matrix, _train: bool) {
            output.as_mut_slice().copy_from_slice(input.as_slice());
        }
        fn backward(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
            grad_in.as_mut_slice().copy_from_slice(grad_out.as_slice());
        }
    }

    #[test]
    fn default_param_views_are_empty() {
        let mut l = Stateless;
        assert!(l.params().is_empty());
        assert!(l.params_mut().is_empty());
        assert!(l.grads().is_empty());
        assert_eq!(l.param_count(), 0);
    }

    #[test]
    fn ensure_shape_reallocates_only_on_mismatch() {
        let mut m = Matrix::zeros(2, 3);
        ensure_shape(&mut m, 2, 3);
        assert_eq!(m.shape(), (2, 3));
        ensure_shape(&mut m, 4, 5);
        assert_eq!(m.shape(), (4, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }
}
