//! Fully-connected (dense) layer.

use crate::layer::{ensure_shape, Layer};
use skiptrain_linalg::{gemm_a_bt_into, gemm_at_b_into, Matrix};

/// A dense layer computing `Y = X · W + b`.
///
/// Parameters are packed contiguously as `[W (in×out, row-major) | b (out)]`
/// so the model can expose one flat parameter vector for gossip exchange,
/// and all three GEMMs of the layer run directly on the packed slice with no
/// copies.
pub struct Dense {
    input_dim: usize,
    output_dim: usize,
    /// `[W | b]`, `input_dim * output_dim + output_dim` values.
    params: Vec<f32>,
    grads: Vec<f32>,
    /// Input cached by the forward pass for the weight-gradient GEMM.
    cached_input: Matrix,
}

impl Dense {
    /// Creates a dense layer with He-uniform initialized weights and zero
    /// bias (PyTorch's `nn.Linear` default family).
    pub fn new(input_dim: usize, output_dim: usize, init: &mut crate::zoo::InitRng) -> Self {
        let n = input_dim * output_dim + output_dim;
        let mut params = vec![0.0f32; n];
        let bound = (6.0f32 / input_dim as f32).sqrt();
        for w in params[..input_dim * output_dim].iter_mut() {
            *w = init.uniform(-bound, bound);
        }
        Self {
            input_dim,
            output_dim,
            params,
            grads: vec![0.0f32; n],
            cached_input: Matrix::zeros(0, 0),
        }
    }

    #[inline]
    fn weight_len(&self) -> usize {
        self.input_dim * self.output_dim
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn forward(&mut self, input: &Matrix, output: &mut Matrix, train: bool) {
        let batch = input.rows();
        assert_eq!(
            input.cols(),
            self.input_dim,
            "dense forward: input dim mismatch"
        );
        ensure_shape(output, batch, self.output_dim);

        let (w, bias) = self.params.split_at(self.weight_len());
        // Y = X · W, written with the ikj kernel streaming rows of W.
        skiptrain_linalg::gemm_into(
            batch,
            self.input_dim,
            self.output_dim,
            input.as_slice(),
            w,
            output.as_mut_slice(),
        );
        for r in 0..batch {
            let row = output.row_mut(r);
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }

        if train {
            ensure_shape(&mut self.cached_input, batch, self.input_dim);
            self.cached_input
                .as_mut_slice()
                .copy_from_slice(input.as_slice());
        }
    }

    fn backward(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        let batch = grad_out.rows();
        assert_eq!(
            grad_out.cols(),
            self.output_dim,
            "dense backward: grad dim mismatch"
        );
        assert_eq!(
            self.cached_input.rows(),
            batch,
            "dense backward: no cached forward for this batch"
        );
        ensure_shape(grad_in, batch, self.input_dim);

        let wlen = self.weight_len();
        let (dw, db) = self.grads.split_at_mut(wlen);
        // dW += Xᵀ · dY
        gemm_at_b_into(
            self.input_dim,
            batch,
            self.output_dim,
            self.cached_input.as_slice(),
            grad_out.as_slice(),
            dw,
        );
        // db += column sums of dY
        for r in 0..batch {
            for (g, d) in db.iter_mut().zip(grad_out.row(r)) {
                *g += d;
            }
        }
        // dX = dY · Wᵀ — A·Bᵀ with B = W viewed as out-major? W is in×out
        // row-major, i.e. Wᵀ is out×in; a_bt wants B as n×k = in×out: exactly W.
        gemm_a_bt_into(
            batch,
            self.output_dim,
            self.input_dim,
            grad_out.as_slice(),
            &self.params[..wlen],
            grad_in.as_mut_slice(),
        );
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn grads(&self) -> &[f32] {
        &self.grads
    }

    fn grads_mut(&mut self) -> &mut [f32] {
        &mut self.grads
    }

    fn params_and_grads(&mut self) -> (&mut [f32], &[f32]) {
        (&mut self.params, &self.grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::InitRng;

    fn fixed_dense(input_dim: usize, output_dim: usize) -> Dense {
        let mut init = InitRng::new(42);
        Dense::new(input_dim, output_dim, &mut init)
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut d = fixed_dense(2, 3);
        // W = [[1,2,3],[4,5,6]], b = [.1,.2,.3]
        d.params_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.1, 0.2, 0.3]);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let mut y = Matrix::zeros(0, 0);
        d.forward(&x, &mut y, false);
        assert_eq!(y.shape(), (1, 3));
        let row = y.row(0);
        assert!((row[0] - 5.1).abs() < 1e-6);
        assert!((row[1] - 7.2).abs() < 1e-6);
        assert!((row[2] - 9.3).abs() < 1e-6);
    }

    #[test]
    fn input_gradient_matches_manual() {
        let mut d = fixed_dense(2, 2);
        // W = [[1,2],[3,4]], b = 0
        d.params_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 0.0, 0.0]);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let mut y = Matrix::zeros(0, 0);
        d.forward(&x, &mut y, true);
        let g = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let mut gi = Matrix::zeros(0, 0);
        d.backward(&g, &mut gi);
        // dX = dY · Wᵀ = [1,0]·[[1,3],[2,4]]ᵀ... dX_j = Σ_o g_o W[j][o] = W[j][0]
        assert_eq!(gi.row(0), &[1.0, 3.0]);
        // dW[i][o] = x_i * g_o → [[1,0],[1,0]]; db = [1,0]
        assert_eq!(&d.grads()[..4], &[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(&d.grads()[4..], &[1.0, 0.0]);
    }

    #[test]
    fn param_count_is_w_plus_b() {
        let d = fixed_dense(7, 5);
        assert_eq!(d.param_count(), 7 * 5 + 5);
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = fixed_dense(4, 4);
        let b = fixed_dense(4, 4);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn bias_initialized_to_zero() {
        let d = fixed_dense(3, 2);
        assert_eq!(&d.params()[6..], &[0.0, 0.0]);
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut d = fixed_dense(2, 2);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let mut y = Matrix::zeros(0, 0);
        d.forward(&x, &mut y, true);
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let mut gi = Matrix::zeros(0, 0);
        d.backward(&g, &mut gi);
        let g1 = d.grads().to_vec();
        d.forward(&x, &mut y, true);
        d.backward(&g, &mut gi);
        for (a, b) in d.grads().iter().zip(&g1) {
            assert!((a - 2.0 * b).abs() < 1e-5, "gradient did not accumulate");
        }
    }
}
