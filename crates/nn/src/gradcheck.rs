//! Finite-difference gradient verification.
//!
//! Manual backpropagation is the highest-risk code in the substrate, so the
//! test suite verifies every layer type end-to-end against central
//! differences. The checker is public so downstream users adding custom
//! layers can reuse it.

use crate::loss::SoftmaxCrossEntropy;
use crate::model::Sequential;
use skiptrain_linalg::Matrix;

/// Outcome of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest relative error across the checked coordinates.
    pub max_rel_error: f32,
    /// Index of the worst coordinate in the flattened parameter vector.
    pub worst_index: usize,
    /// Analytic gradient at the worst coordinate.
    pub analytic: f32,
    /// Numeric gradient at the worst coordinate.
    pub numeric: f32,
    /// How many coordinates were checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// True if the worst relative error is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error < tol
    }
}

/// Relative error with an absolute floor so near-zero gradients don't blow
/// up the ratio.
fn rel_error(a: f32, b: f32) -> f32 {
    (a - b).abs() / (a.abs().max(b.abs()) + 1e-3)
}

/// Verifies the model's backpropagated gradients against central finite
/// differences of the loss.
///
/// `max_coords` bounds the number of parameter coordinates probed (spread
/// evenly over the flattened vector) since each probe costs two forward
/// passes.
pub fn check_gradients(
    model: &mut Sequential,
    loss: &SoftmaxCrossEntropy,
    x: &Matrix,
    labels: &[u32],
    eps: f32,
    max_coords: usize,
) -> GradCheckReport {
    // Analytic gradients.
    model.zero_grads();
    let mut grad_logits = Matrix::zeros(0, 0);
    {
        let logits = model.forward(x, true);
        loss.loss_and_grad(logits, labels, &mut grad_logits);
    }
    model.backward(&grad_logits);
    let mut analytic = Vec::new();
    model.copy_grads_to(&mut analytic);

    let mut flat = model.flat_params();
    let n = flat.len();
    let step = (n / max_coords.max(1)).max(1);

    let mut report = GradCheckReport {
        max_rel_error: 0.0,
        worst_index: 0,
        analytic: 0.0,
        numeric: 0.0,
        checked: 0,
    };

    let mut idx = 0usize;
    while idx < n {
        let orig = flat[idx];
        flat[idx] = orig + eps;
        model.load_params(&flat);
        let lp = loss.loss(model.forward(x, false), labels);
        flat[idx] = orig - eps;
        model.load_params(&flat);
        let lm = loss.loss(model.forward(x, false), labels);
        flat[idx] = orig;

        let numeric = (lp - lm) / (2.0 * eps);
        let err = rel_error(analytic[idx], numeric);
        if err > report.max_rel_error {
            report.max_rel_error = err;
            report.worst_index = idx;
            report.analytic = analytic[idx];
            report.numeric = numeric;
        }
        report.checked += 1;
        idx += step;
    }
    model.load_params(&flat);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activations::{Relu, Tanh};
    use crate::conv::{Conv2d, MaxPool2d, Shape2d};
    use crate::dense::Dense;
    use crate::zoo::InitRng;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_batch(batch: usize, dim: usize, classes: usize, seed: u64) -> (Matrix, Vec<u32>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = Matrix::from_fn(batch, dim, |_, _| rng.random_range(-1.0f32..1.0));
        let labels = (0..batch)
            .map(|_| rng.random_range(0..classes) as u32)
            .collect();
        (x, labels)
    }

    #[test]
    fn mlp_gradients_verify() {
        let mut model = crate::zoo::mlp(&[6, 10, 4], 11);
        let loss = SoftmaxCrossEntropy::new(4);
        let (x, y) = random_batch(5, 6, 4, 1);
        let report = check_gradients(&mut model, &loss, &x, &y, 1e-2, 120);
        assert!(report.passes(2e-2), "mlp gradcheck failed: {:?}", report);
    }

    #[test]
    fn logistic_gradients_verify() {
        let mut model = crate::zoo::logistic_regression(8, 3, 5);
        let loss = SoftmaxCrossEntropy::new(3);
        let (x, y) = random_batch(7, 8, 3, 2);
        let report = check_gradients(&mut model, &loss, &x, &y, 1e-2, 60);
        assert!(
            report.passes(2e-2),
            "logistic gradcheck failed: {:?}",
            report
        );
    }

    #[test]
    fn tanh_mlp_gradients_verify() {
        let mut init = InitRng::new(3);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(5, 7, &mut init)),
            Box::new(Tanh::new(7)),
            Box::new(Dense::new(7, 3, &mut init)),
        ]);
        let loss = SoftmaxCrossEntropy::new(3);
        let (x, y) = random_batch(4, 5, 3, 3);
        let report = check_gradients(&mut model, &loss, &x, &y, 1e-2, 80);
        assert!(report.passes(2e-2), "tanh gradcheck failed: {:?}", report);
    }

    #[test]
    fn conv_pool_gradients_verify() {
        let mut init = InitRng::new(4);
        let s0 = Shape2d::new(2, 6, 6);
        let c1 = Conv2d::new(s0, 3, 3, 1, 1, &mut init);
        let s1 = c1.output_shape();
        let p1 = MaxPool2d::new(s1, 2);
        let s2 = p1.output_shape();
        let fc = Dense::new(s2.len(), 4, &mut init);
        let mut model = Sequential::new(vec![
            Box::new(c1),
            Box::new(Relu::new(s1.len())),
            Box::new(p1),
            Box::new(fc),
        ]);
        let loss = SoftmaxCrossEntropy::new(4);
        let (x, y) = random_batch(3, s0.len(), 4, 4);
        let report = check_gradients(&mut model, &loss, &x, &y, 1e-2, 150);
        assert!(report.passes(3e-2), "conv gradcheck failed: {:?}", report);
    }

    #[test]
    fn strided_conv_gradients_verify() {
        let mut init = InitRng::new(6);
        let s0 = Shape2d::new(1, 7, 7);
        let c1 = Conv2d::new(s0, 2, 3, 2, 0, &mut init);
        let s1 = c1.output_shape();
        let fc = Dense::new(s1.len(), 3, &mut init);
        let mut model = Sequential::new(vec![
            Box::new(c1),
            Box::new(Relu::new(s1.len())),
            Box::new(fc),
        ]);
        let loss = SoftmaxCrossEntropy::new(3);
        let (x, y) = random_batch(2, s0.len(), 3, 5);
        let report = check_gradients(&mut model, &loss, &x, &y, 1e-2, 100);
        assert!(
            report.passes(3e-2),
            "strided conv gradcheck failed: {:?}",
            report
        );
    }
}
