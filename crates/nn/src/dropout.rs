//! Inverted dropout, provided as an extension for regularization studies
//! (the paper's models do not use dropout; ablation configs can).

use crate::layer::{ensure_shape, Layer};
use rand::RngExt;
use skiptrain_linalg::rng::stream_rng;
use skiptrain_linalg::Matrix;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation is
/// the identity function.
pub struct Dropout {
    dim: usize,
    p: f32,
    seed: u64,
    calls: u64,
    /// Mask of the last training forward (scale factor or 0 per element).
    mask: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer over `dim` features.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(dim: usize, p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Self {
            dim,
            p,
            seed,
            calls: 0,
            mask: Vec::new(),
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn forward(&mut self, input: &Matrix, output: &mut Matrix, train: bool) {
        assert_eq!(input.cols(), self.dim, "dropout forward: dim mismatch");
        ensure_shape(output, input.rows(), self.dim);
        if !train || self.p == 0.0 {
            output.as_mut_slice().copy_from_slice(input.as_slice());
            if train {
                self.mask.clear();
                self.mask.resize(input.len(), 1.0);
            }
            return;
        }
        // fresh deterministic mask per training call
        self.calls += 1;
        let mut rng = stream_rng(self.seed ^ 0xD809, self.calls);
        let keep_scale = 1.0 / (1.0 - self.p);
        self.mask.clear();
        self.mask.reserve(input.len());
        for (o, &x) in output.as_mut_slice().iter_mut().zip(input.as_slice()) {
            let keep = rng.random::<f32>() >= self.p;
            let m = if keep { keep_scale } else { 0.0 };
            self.mask.push(m);
            *o = x * m;
        }
    }

    fn backward(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        assert_eq!(
            self.mask.len(),
            grad_out.len(),
            "dropout backward: no cached forward for this batch"
        );
        ensure_shape(grad_in, grad_out.rows(), self.dim);
        for ((gi, &go), &m) in grad_in
            .as_mut_slice()
            .iter_mut()
            .zip(grad_out.as_slice())
            .zip(&self.mask)
        {
            *gi = go * m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(4, 0.5, 1);
        let x = Matrix::from_vec(1, 4, vec![1.0, -2.0, 3.0, 0.5]);
        let mut y = Matrix::zeros(0, 0);
        d.forward(&x, &mut y, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(1000, 0.3, 2);
        let x = Matrix::full(1, 1000, 1.0);
        let mut y = Matrix::zeros(0, 0);
        d.forward(&x, &mut y, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(
            (zeros as f32 / 1000.0 - 0.3).abs() < 0.06,
            "zeroed {zeros}/1000"
        );
        // survivors are scaled by 1/(1-p)
        let survivor = y.as_slice().iter().find(|&&v| v != 0.0).unwrap();
        assert!((survivor - 1.0 / 0.7).abs() < 1e-5);
    }

    #[test]
    fn expected_value_is_preserved() {
        let mut d = Dropout::new(2000, 0.4, 3);
        let x = Matrix::full(1, 2000, 1.0);
        let mut y = Matrix::zeros(0, 0);
        d.forward(&x, &mut y, true);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 2000.0;
        assert!((mean - 1.0).abs() < 0.08, "inverted dropout mean {mean}");
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(64, 0.5, 4);
        let x = Matrix::full(1, 64, 2.0);
        let mut y = Matrix::zeros(0, 0);
        d.forward(&x, &mut y, true);
        let g = Matrix::full(1, 64, 1.0);
        let mut gi = Matrix::zeros(0, 0);
        d.backward(&g, &mut gi);
        for (o, gi_v) in y.as_slice().iter().zip(gi.as_slice()) {
            // y = 2 * m and gi = m, so y == 2 * gi elementwise
            assert!((o - 2.0 * gi_v).abs() < 1e-6);
        }
    }

    #[test]
    fn masks_differ_across_calls_but_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut d = Dropout::new(32, 0.5, seed);
            let x = Matrix::full(1, 32, 1.0);
            let mut y1 = Matrix::zeros(0, 0);
            let mut y2 = Matrix::zeros(0, 0);
            d.forward(&x, &mut y1, true);
            d.forward(&x, &mut y2, true);
            (y1.as_slice().to_vec(), y2.as_slice().to_vec())
        };
        let (a1, a2) = run(7);
        let (b1, _) = run(7);
        assert_ne!(a1, a2, "mask must be resampled per call");
        assert_eq!(a1, b1, "same seed must give the same mask sequence");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(4, 1.0, 1);
    }
}
