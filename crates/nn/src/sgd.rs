//! Stochastic gradient descent.
//!
//! The paper trains with plain SGD (Table 1); momentum and weight decay are
//! provided for ablations and the examples.

use crate::model::Sequential;
use serde::{Deserialize, Serialize};

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate η.
    pub lr: f32,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl SgdConfig {
    /// Plain SGD at learning rate `lr` — the paper's optimizer.
    pub fn plain(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self::plain(0.1)
    }
}

/// SGD optimizer with optional momentum.
pub struct Sgd {
    config: SgdConfig,
    /// Momentum buffer over the flattened parameter vector; allocated lazily
    /// on first step when momentum is enabled.
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an optimizer.
    pub fn new(config: SgdConfig) -> Self {
        assert!(config.lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&config.momentum),
            "momentum must be in [0, 1)"
        );
        assert!(
            config.weight_decay >= 0.0,
            "weight decay must be non-negative"
        );
        Self {
            config,
            velocity: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.config.lr = lr;
    }

    /// Applies one update `w ← w − η (g + λw)` (with optional momentum)
    /// using the gradients currently accumulated in the model.
    pub fn step(&mut self, model: &mut Sequential) {
        let lr = self.config.lr;
        let wd = self.config.weight_decay;
        let mu = self.config.momentum;

        if mu == 0.0 {
            model.for_each_param_block(|params, grads| {
                if wd == 0.0 {
                    skiptrain_linalg::ops::axpy(-lr, grads, params);
                } else {
                    for (w, &g) in params.iter_mut().zip(grads) {
                        *w -= lr * (g + wd * *w);
                    }
                }
            });
            return;
        }

        if self.velocity.len() != model.param_count() {
            self.velocity = vec![0.0; model.param_count()];
        }
        let mut offset = 0usize;
        let velocity = &mut self.velocity;
        model.for_each_param_block(|params, grads| {
            let v = &mut velocity[offset..offset + params.len()];
            for ((w, &g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
                let eff_g = g + wd * *w;
                *vi = mu * *vi + eff_g;
                *w -= lr * *vi;
            }
            offset += params.len();
        });
    }

    /// Resets the momentum buffer (call after a model is replaced by an
    /// aggregated model, where stale velocity no longer applies).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::zoo::InitRng;
    use skiptrain_linalg::Matrix;

    fn one_layer() -> Sequential {
        let mut init = InitRng::new(1);
        Sequential::new(vec![Box::new(Dense::new(2, 2, &mut init))])
    }

    fn run_backward(model: &mut Sequential) {
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let _ = model.forward(&x, true);
        let g = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        model.backward(&g);
    }

    #[test]
    fn plain_step_moves_against_gradient() {
        let mut model = one_layer();
        let before = model.flat_params();
        run_backward(&mut model);
        let mut grads = Vec::new();
        model.copy_grads_to(&mut grads);
        let mut opt = Sgd::new(SgdConfig::plain(0.5));
        opt.step(&mut model);
        let after = model.flat_params();
        for ((b, a), g) in before.iter().zip(&after).zip(&grads) {
            assert!((a - (b - 0.5 * g)).abs() < 1e-6);
        }
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut model = one_layer();
        // zero gradients: step should purely decay
        model.zero_grads();
        let before = model.flat_params();
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        });
        opt.step(&mut model);
        for (b, a) in before.iter().zip(model.flat_params()) {
            assert!((a - b * (1.0 - 0.05)).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accelerates_repeated_steps() {
        let mut plain_model = one_layer();
        let mut mom_model = one_layer();
        let mut plain = Sgd::new(SgdConfig::plain(0.1));
        let mut mom = Sgd::new(SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
        });
        let start = plain_model.flat_params();
        for _ in 0..5 {
            plain_model.zero_grads();
            run_backward(&mut plain_model);
            plain.step(&mut plain_model);
            mom_model.zero_grads();
            run_backward(&mut mom_model);
            mom.step(&mut mom_model);
        }
        let d_plain: f32 = start
            .iter()
            .zip(plain_model.flat_params())
            .map(|(s, w)| (s - w).abs())
            .sum();
        let d_mom: f32 = start
            .iter()
            .zip(mom_model.flat_params())
            .map(|(s, w)| (s - w).abs())
            .sum();
        assert!(
            d_mom > d_plain,
            "momentum should travel farther: {d_mom} vs {d_plain}"
        );
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(SgdConfig::plain(0.0));
    }
}
