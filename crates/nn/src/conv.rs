//! 2-D convolution and max-pooling layers.
//!
//! Activations stay in flat batch-major matrices; these layers interpret the
//! feature axis as a `channels × height × width` volume. Convolution uses
//! the im2col strategy: each sample is unfolded into a column matrix so the
//! convolution becomes a single GEMM, the same approach classical PyTorch CPU
//! kernels use.

use crate::layer::{ensure_shape, Layer};
use skiptrain_linalg::{gemm_at_b_into, gemm_into, Matrix};

/// Spatial geometry of a convolution / pooling input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape2d {
    /// Number of channels.
    pub channels: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
}

impl Shape2d {
    /// Creates a shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Flattened feature count.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// True for degenerate (zero-sized) shapes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The `Copy` unfold geometry of a convolution, split out of [`Conv2d`] so
/// the im2col/col2im kernels can run against borrowed sample slices (the
/// cached forward input) while the column scratch buffers are mutably
/// borrowed from the same layer — no per-sample copies.
#[derive(Debug, Clone, Copy)]
struct ConvGeom {
    input: Shape2d,
    kernel: usize,
    stride: usize,
    padding: usize,
    out_h: usize,
    out_w: usize,
}

impl ConvGeom {
    #[inline]
    fn out_len(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Unfolds one sample (`in_c·h·w` flat) into `cols`
    /// (`ckk × out_h·out_w`, row-major).
    fn im2col(&self, sample: &[f32], cols: &mut [f32]) {
        let (h, w) = (self.input.height, self.input.width);
        let l = self.out_len();
        cols.fill(0.0);
        let mut row = 0usize;
        for c in 0..self.input.channels {
            let plane = &sample[c * h * w..(c + 1) * h * w];
            for ky in 0..self.kernel {
                for kx in 0..self.kernel {
                    let dst = &mut cols[row * l..(row + 1) * l];
                    let mut idx = 0usize;
                    for oy in 0..self.out_h {
                        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            idx += self.out_w;
                            continue;
                        }
                        let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                        for ox in 0..self.out_w {
                            let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                            if ix >= 0 && ix < w as isize {
                                dst[idx] = src_row[ix as usize];
                            }
                            idx += 1;
                        }
                    }
                    row += 1;
                }
            }
        }
    }

    /// Scatter-adds `dcols` back into one sample gradient.
    fn col2im(&self, dcols: &[f32], grad_sample: &mut [f32]) {
        let (h, w) = (self.input.height, self.input.width);
        let l = self.out_len();
        let mut row = 0usize;
        for c in 0..self.input.channels {
            let plane_base = c * h * w;
            for ky in 0..self.kernel {
                for kx in 0..self.kernel {
                    let src = &dcols[row * l..(row + 1) * l];
                    let mut idx = 0usize;
                    for oy in 0..self.out_h {
                        let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            idx += self.out_w;
                            continue;
                        }
                        let row_base = plane_base + iy as usize * w;
                        for ox in 0..self.out_w {
                            let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                            if ix >= 0 && ix < w as isize {
                                grad_sample[row_base + ix as usize] += src[idx];
                            }
                            idx += 1;
                        }
                    }
                    row += 1;
                }
            }
        }
    }
}

/// 2-D convolution with square kernels.
///
/// Parameters are packed as `[W (out_c × in_c·k·k) | b (out_c)]`.
pub struct Conv2d {
    geom: ConvGeom,
    out_channels: usize,
    params: Vec<f32>,
    grads: Vec<f32>,
    cached_input: Matrix,
    /// Workhorse im2col buffer: `in_c·k·k × out_h·out_w`.
    cols: Vec<f32>,
    /// Workhorse column-gradient buffer, same shape as `cols`.
    dcols: Vec<f32>,
    /// Workhorse per-sample dW accumulator.
    dw_tmp: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    /// Panics if the geometry does not produce at least a 1×1 output.
    pub fn new(
        input: Shape2d,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        init: &mut crate::zoo::InitRng,
    ) -> Self {
        assert!(
            kernel >= 1 && stride >= 1,
            "conv2d: degenerate kernel/stride"
        );
        assert!(
            input.height + 2 * padding >= kernel && input.width + 2 * padding >= kernel,
            "conv2d: kernel larger than padded input"
        );
        let out_h = (input.height + 2 * padding - kernel) / stride + 1;
        let out_w = (input.width + 2 * padding - kernel) / stride + 1;
        let ckk = input.channels * kernel * kernel;
        let n = out_channels * ckk + out_channels;
        let mut params = vec![0.0f32; n];
        let bound = (6.0f32 / ckk as f32).sqrt();
        for w in params[..out_channels * ckk].iter_mut() {
            *w = init.uniform(-bound, bound);
        }
        Self {
            geom: ConvGeom {
                input,
                kernel,
                stride,
                padding,
                out_h,
                out_w,
            },
            out_channels,
            params,
            grads: vec![0.0f32; n],
            cached_input: Matrix::zeros(0, 0),
            cols: vec![0.0f32; ckk * out_h * out_w],
            dcols: vec![0.0f32; ckk * out_h * out_w],
            dw_tmp: vec![0.0f32; out_channels * ckk],
        }
    }

    /// Output spatial shape.
    pub fn output_shape(&self) -> Shape2d {
        Shape2d::new(self.out_channels, self.geom.out_h, self.geom.out_w)
    }

    #[inline]
    fn ckk(&self) -> usize {
        let g = &self.geom;
        g.input.channels * g.kernel * g.kernel
    }

    #[inline]
    fn out_len(&self) -> usize {
        self.geom.out_len()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn input_dim(&self) -> usize {
        self.geom.input.len()
    }

    fn output_dim(&self) -> usize {
        self.out_channels * self.out_len()
    }

    fn forward(&mut self, input: &Matrix, output: &mut Matrix, train: bool) {
        let batch = input.rows();
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "conv2d forward: input dim mismatch"
        );
        ensure_shape(output, batch, self.output_dim());

        let geom = self.geom;
        let in_dim = self.input_dim();
        let ckk = self.ckk();
        let l = self.out_len();
        for s in 0..batch {
            // unfold straight out of the caller's batch row — no copy
            geom.im2col(
                &input.as_slice()[s * in_dim..(s + 1) * in_dim],
                &mut self.cols,
            );
            let (w, bias) = self.params.split_at(self.out_channels * ckk);
            let out_row = output.row_mut(s);
            // out (out_c × L) = W (out_c × ckk) · cols (ckk × L)
            gemm_into(self.out_channels, ckk, l, w, &self.cols, out_row);
            for oc in 0..self.out_channels {
                let b = bias[oc];
                for v in &mut out_row[oc * l..(oc + 1) * l] {
                    *v += b;
                }
            }
        }

        if train {
            ensure_shape(&mut self.cached_input, batch, in_dim);
            self.cached_input
                .as_mut_slice()
                .copy_from_slice(input.as_slice());
        }
    }

    fn backward(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        let batch = grad_out.rows();
        assert_eq!(
            grad_out.cols(),
            self.output_dim(),
            "conv2d backward: grad dim mismatch"
        );
        assert_eq!(
            self.cached_input.rows(),
            batch,
            "conv2d backward: no cached forward for this batch"
        );
        ensure_shape(grad_in, batch, self.input_dim());
        grad_in.fill_zero();

        let geom = self.geom;
        let ckk = self.ckk();
        let l = self.out_len();
        let wlen = self.out_channels * ckk;
        for s in 0..batch {
            // recompute the unfold from the cached input, sliced in place
            // (memory-cheap backward, no per-sample copy)
            geom.im2col(self.cached_input.row(s), &mut self.cols);
            let dy = grad_out.row(s);

            // dW += dY · colsᵀ : A=dY (out_c×L), B=cols (ckk×L) → A·Bᵀ (out_c×ckk)
            skiptrain_linalg::gemm_a_bt_into(
                self.out_channels,
                l,
                ckk,
                dy,
                &self.cols,
                &mut self.dw_tmp,
            );
            for (g, d) in self.grads[..wlen].iter_mut().zip(&self.dw_tmp) {
                *g += d;
            }
            // db += row sums of dY
            for oc in 0..self.out_channels {
                let sum: f32 = dy[oc * l..(oc + 1) * l].iter().sum();
                self.grads[wlen + oc] += sum;
            }
            // dcols = Wᵀ · dY : accumulate kernel needs zeroed target
            self.dcols.fill(0.0);
            gemm_at_b_into(
                ckk,
                self.out_channels,
                l,
                &self.params[..wlen],
                dy,
                &mut self.dcols,
            );
            geom.col2im(&self.dcols, grad_in.row_mut(s));
        }
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn grads(&self) -> &[f32] {
        &self.grads
    }

    fn grads_mut(&mut self) -> &mut [f32] {
        &mut self.grads
    }

    fn params_and_grads(&mut self) -> (&mut [f32], &[f32]) {
        (&mut self.params, &self.grads)
    }
}

/// Max pooling with square window and stride equal to the window size.
pub struct MaxPool2d {
    input: Shape2d,
    window: usize,
    out_h: usize,
    out_w: usize,
    /// Per-output argmax (linear index into the input sample), batch-major.
    cached_argmax: Vec<u32>,
}

impl MaxPool2d {
    /// Creates a pooling layer with `window × window` non-overlapping windows.
    ///
    /// # Panics
    /// Panics if the input is smaller than the window.
    pub fn new(input: Shape2d, window: usize) -> Self {
        assert!(window >= 1, "maxpool: degenerate window");
        assert!(
            input.height >= window && input.width >= window,
            "maxpool: window larger than input"
        );
        let out_h = input.height / window;
        let out_w = input.width / window;
        Self {
            input,
            window,
            out_h,
            out_w,
            cached_argmax: Vec::new(),
        }
    }

    /// Output spatial shape.
    pub fn output_shape(&self) -> Shape2d {
        Shape2d::new(self.input.channels, self.out_h, self.out_w)
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn input_dim(&self) -> usize {
        self.input.len()
    }

    fn output_dim(&self) -> usize {
        self.input.channels * self.out_h * self.out_w
    }

    fn forward(&mut self, input: &Matrix, output: &mut Matrix, train: bool) {
        let batch = input.rows();
        assert_eq!(
            input.cols(),
            self.input_dim(),
            "maxpool forward: input dim mismatch"
        );
        ensure_shape(output, batch, self.output_dim());
        if train {
            self.cached_argmax.clear();
            self.cached_argmax.reserve(batch * self.output_dim());
        }

        let (h, w) = (self.input.height, self.input.width);
        for s in 0..batch {
            let sample = input.row(s);
            let out_row = output.row_mut(s);
            let mut o = 0usize;
            for c in 0..self.input.channels {
                let plane_base = c * h * w;
                for oy in 0..self.out_h {
                    for ox in 0..self.out_w {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for wy in 0..self.window {
                            let iy = oy * self.window + wy;
                            let base = plane_base + iy * w + ox * self.window;
                            for wx in 0..self.window {
                                let v = sample[base + wx];
                                if v > best {
                                    best = v;
                                    best_idx = base + wx;
                                }
                            }
                        }
                        out_row[o] = best;
                        if train {
                            self.cached_argmax.push(best_idx as u32);
                        }
                        o += 1;
                    }
                }
            }
        }
    }

    fn backward(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        let batch = grad_out.rows();
        assert_eq!(
            self.cached_argmax.len(),
            batch * self.output_dim(),
            "maxpool backward: no cached forward for this batch"
        );
        ensure_shape(grad_in, batch, self.input_dim());
        grad_in.fill_zero();
        let od = self.output_dim();
        for s in 0..batch {
            let go = grad_out.row(s);
            let gi = grad_in.row_mut(s);
            let args = &self.cached_argmax[s * od..(s + 1) * od];
            for (o, &idx) in args.iter().enumerate() {
                gi[idx as usize] += go[o];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::InitRng;

    #[test]
    fn conv_output_geometry() {
        let mut init = InitRng::new(1);
        let c = Conv2d::new(Shape2d::new(3, 32, 32), 16, 5, 1, 2, &mut init);
        assert_eq!(c.output_shape(), Shape2d::new(16, 32, 32));
        assert_eq!(c.param_count(), 16 * 3 * 25 + 16);
    }

    #[test]
    fn conv_identity_kernel_passthrough() {
        // 1x1 kernel, single channel, weight 1, bias 0 → identity map.
        let mut init = InitRng::new(2);
        let mut c = Conv2d::new(Shape2d::new(1, 3, 3), 1, 1, 1, 0, &mut init);
        c.params_mut()[0] = 1.0;
        c.params_mut()[1] = 0.0;
        let x = Matrix::from_fn(1, 9, |_, i| i as f32);
        let mut y = Matrix::zeros(0, 0);
        c.forward(&x, &mut y, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_known_3x3_sum_kernel() {
        // 3x3 all-ones kernel, no padding, on a 3x3 input sums the input.
        let mut init = InitRng::new(3);
        let mut c = Conv2d::new(Shape2d::new(1, 3, 3), 1, 3, 1, 0, &mut init);
        for w in c.params_mut()[..9].iter_mut() {
            *w = 1.0;
        }
        c.params_mut()[9] = 0.5; // bias
        let x = Matrix::from_fn(1, 9, |_, i| (i + 1) as f32);
        let mut y = Matrix::zeros(0, 0);
        c.forward(&x, &mut y, false);
        assert_eq!(y.shape(), (1, 1));
        assert!((y.row(0)[0] - 45.5).abs() < 1e-5);
    }

    #[test]
    fn conv_padding_zero_extends() {
        // 3x3 ones kernel with padding 1 on a 1x1 input: output = input value.
        let mut init = InitRng::new(4);
        let mut c = Conv2d::new(Shape2d::new(1, 1, 1), 1, 3, 1, 1, &mut init);
        for w in c.params_mut()[..9].iter_mut() {
            *w = 1.0;
        }
        c.params_mut()[9] = 0.0;
        let x = Matrix::from_vec(1, 1, vec![7.0]);
        let mut y = Matrix::zeros(0, 0);
        c.forward(&x, &mut y, false);
        assert_eq!(y.as_slice(), &[7.0]);
    }

    #[test]
    fn maxpool_picks_window_maxima() {
        let p_in = Shape2d::new(1, 4, 4);
        let mut p = MaxPool2d::new(p_in, 2);
        let x = Matrix::from_fn(1, 16, |_, i| i as f32);
        let mut y = Matrix::zeros(0, 0);
        p.forward(&x, &mut y, false);
        assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(Shape2d::new(1, 2, 2), 2);
        let x = Matrix::from_vec(1, 4, vec![1.0, 9.0, 3.0, 2.0]);
        let mut y = Matrix::zeros(0, 0);
        p.forward(&x, &mut y, true);
        let g = Matrix::from_vec(1, 1, vec![4.0]);
        let mut gi = Matrix::zeros(0, 0);
        p.backward(&g, &mut gi);
        assert_eq!(gi.as_slice(), &[0.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_batch_matches_single_sample_runs() {
        let mut init = InitRng::new(5);
        let mut c = Conv2d::new(Shape2d::new(2, 5, 5), 3, 3, 1, 1, &mut init);
        let x = Matrix::from_fn(2, 50, |r, i| ((r * 50 + i) as f32).sin());
        let mut y_batch = Matrix::zeros(0, 0);
        c.forward(&x, &mut y_batch, false);

        let x0 = Matrix::from_vec(1, 50, x.row(0).to_vec());
        let x1 = Matrix::from_vec(1, 50, x.row(1).to_vec());
        let mut y0 = Matrix::zeros(0, 0);
        let mut y1 = Matrix::zeros(0, 0);
        c.forward(&x0, &mut y0, false);
        c.forward(&x1, &mut y1, false);
        assert_eq!(y_batch.row(0), y0.row(0));
        assert_eq!(y_batch.row(1), y1.row(0));
    }
}
