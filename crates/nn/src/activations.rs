//! Stateless activation layers.

use crate::layer::{ensure_shape, Layer};
use skiptrain_linalg::Matrix;

/// Rectified linear unit: `y = max(0, x)`.
///
/// The backward pass uses the *output* mask (`y > 0`), which equals the input
/// mask for ReLU and avoids caching the input separately.
pub struct Relu {
    dim: usize,
    cached_output_mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU over `dim` features.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            cached_output_mask: Vec::new(),
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn forward(&mut self, input: &Matrix, output: &mut Matrix, train: bool) {
        assert_eq!(input.cols(), self.dim, "relu forward: dim mismatch");
        ensure_shape(output, input.rows(), self.dim);
        if train {
            self.cached_output_mask.clear();
            self.cached_output_mask.reserve(input.len());
            for (o, &i) in output.as_mut_slice().iter_mut().zip(input.as_slice()) {
                let keep = i > 0.0;
                *o = if keep { i } else { 0.0 };
                self.cached_output_mask.push(keep);
            }
        } else {
            for (o, &i) in output.as_mut_slice().iter_mut().zip(input.as_slice()) {
                *o = if i > 0.0 { i } else { 0.0 };
            }
        }
    }

    fn backward(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        assert_eq!(
            self.cached_output_mask.len(),
            grad_out.len(),
            "relu backward: no cached forward for this batch"
        );
        ensure_shape(grad_in, grad_out.rows(), self.dim);
        for ((gi, &go), &keep) in grad_in
            .as_mut_slice()
            .iter_mut()
            .zip(grad_out.as_slice())
            .zip(&self.cached_output_mask)
        {
            *gi = if keep { go } else { 0.0 };
        }
    }
}

/// Hyperbolic tangent activation, provided for the linear/regression examples
/// and ablations; the paper's models use ReLU.
pub struct Tanh {
    dim: usize,
    cached_output: Vec<f32>,
}

impl Tanh {
    /// Creates a tanh over `dim` features.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            cached_output: Vec::new(),
        }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn forward(&mut self, input: &Matrix, output: &mut Matrix, train: bool) {
        assert_eq!(input.cols(), self.dim, "tanh forward: dim mismatch");
        ensure_shape(output, input.rows(), self.dim);
        for (o, &i) in output.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = i.tanh();
        }
        if train {
            self.cached_output.clear();
            self.cached_output.extend_from_slice(output.as_slice());
        }
    }

    fn backward(&mut self, grad_out: &Matrix, grad_in: &mut Matrix) {
        assert_eq!(
            self.cached_output.len(),
            grad_out.len(),
            "tanh backward: no cached forward for this batch"
        );
        ensure_shape(grad_in, grad_out.rows(), self.dim);
        for ((gi, &go), &y) in grad_in
            .as_mut_slice()
            .iter_mut()
            .zip(grad_out.as_slice())
            .zip(&self.cached_output)
        {
            *gi = go * (1.0 - y * y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new(4);
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let mut y = Matrix::zeros(0, 0);
        relu.forward(&x, &mut y, false);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_gradient_masks_inactive_units() {
        let mut relu = Relu::new(3);
        let x = Matrix::from_vec(1, 3, vec![-1.0, 1.0, 3.0]);
        let mut y = Matrix::zeros(0, 0);
        relu.forward(&x, &mut y, true);
        let g = Matrix::from_vec(1, 3, vec![5.0, 5.0, 5.0]);
        let mut gi = Matrix::zeros(0, 0);
        relu.backward(&g, &mut gi);
        assert_eq!(gi.as_slice(), &[0.0, 5.0, 5.0]);
    }

    #[test]
    fn relu_zero_input_has_zero_gradient() {
        // the kink: subgradient at 0 chosen as 0, consistent forward/backward
        let mut relu = Relu::new(1);
        let x = Matrix::from_vec(1, 1, vec![0.0]);
        let mut y = Matrix::zeros(0, 0);
        relu.forward(&x, &mut y, true);
        let g = Matrix::from_vec(1, 1, vec![1.0]);
        let mut gi = Matrix::zeros(0, 0);
        relu.backward(&g, &mut gi);
        assert_eq!(gi.as_slice(), &[0.0]);
    }

    #[test]
    fn tanh_matches_std() {
        let mut t = Tanh::new(2);
        let x = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let mut y = Matrix::zeros(0, 0);
        t.forward(&x, &mut y, false);
        assert!((y.row(0)[0] - 0.5f32.tanh()).abs() < 1e-6);
        assert!((y.row(0)[1] + 0.5f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_is_one_minus_y_squared() {
        let mut t = Tanh::new(1);
        let x = Matrix::from_vec(1, 1, vec![0.0]);
        let mut y = Matrix::zeros(0, 0);
        t.forward(&x, &mut y, true);
        let g = Matrix::from_vec(1, 1, vec![2.0]);
        let mut gi = Matrix::zeros(0, 0);
        t.backward(&g, &mut gi);
        // tanh(0)=0, derivative = 1
        assert!((gi.row(0)[0] - 2.0).abs() < 1e-6);
    }
}
