//! Equivalence guarantees for the redesigned experiment layer: the
//! builder/`Experiment`/`Campaign` path must reproduce the legacy
//! `run_experiment` results byte for byte, and the parallel `grid_search`
//! must match serial per-cell execution exactly.

use skiptrain::prelude::*;
use skiptrain_core::sweep::grid_search;
use skiptrain_core::ExperimentBuilder;

fn quick(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 10;
    cfg.rounds = 12;
    cfg.eval_every = 4;
    cfg.eval_max_samples = 150;
    cfg.data = DataSpec::CifarLike {
        feature_dim: 12,
        samples_per_node: 40,
        test_samples: 400,
        shards_per_node: 2,
        separation: 1.2,
        noise: 0.8,
        modes_per_class: 2,
    };
    cfg.hidden_dim = 12;
    cfg.local_steps = 4;
    cfg.record_mean_model = true;
    cfg
}

#[test]
fn builder_and_campaign_reproduce_legacy_results_byte_identically() {
    let cfg = quick(3);

    #[allow(deprecated)]
    let legacy = run_experiment(&cfg);

    let via_experiment = Experiment::from_config(cfg.clone()).expect("valid").run();

    let via_builder = ExperimentBuilder::from_config(cfg.clone())
        .build()
        .expect("valid")
        .run();

    let via_campaign = Campaign::new().push(cfg).run().expect("valid").remove(0);

    let reference = serde_json::to_string(&legacy).unwrap();
    for (label, result) in [
        ("Experiment::run", &via_experiment),
        ("ExperimentBuilder", &via_builder),
        ("Campaign", &via_campaign),
    ] {
        let serialized = serde_json::to_string(result).unwrap();
        assert_eq!(
            serialized, reference,
            "{label} diverged from the legacy runner"
        );
    }
}

#[test]
fn parallel_grid_search_matches_serial_baseline_cell_for_cell() {
    let base = quick(7);
    let gammas = [1usize, 2];

    // Serial baseline: the seed implementation — one shared bundle, cells
    // run one after another in row-major (Γ_sync, Γ_train) order.
    let data = base.data.build(base.nodes, base.seed);
    let mut serial = Vec::new();
    for &gs in &gammas {
        for &gt in &gammas {
            let mut cfg = base.clone();
            cfg.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(gt, gs));
            cfg.name = format!("{}/sweep-gt{gt}-gs{gs}", base.name);
            cfg.eval_every = usize::MAX;
            let result = cfg.run_on(&data);
            serial.push((gt, gs, result));
        }
    }

    // Parallel path: grid_search runs the same cells through a Campaign.
    let sweep = grid_search(&base, &gammas);
    assert_eq!(sweep.cells.len(), serial.len());

    for ((gt, gs, reference), cell) in serial.iter().zip(&sweep.cells) {
        assert_eq!(
            (cell.gamma_train, cell.gamma_sync),
            (*gt, *gs),
            "cell order changed"
        );
        assert_eq!(
            cell.val_accuracy.to_bits(),
            reference.final_val_accuracy.to_bits(),
            "validation accuracy diverged at ({gt}, {gs})"
        );
        assert_eq!(
            cell.test_accuracy.to_bits(),
            reference.final_test.mean_accuracy.to_bits(),
            "test accuracy diverged at ({gt}, {gs})"
        );
        assert_eq!(
            cell.training_energy_wh.to_bits(),
            reference.total_training_wh.to_bits(),
            "training energy diverged at ({gt}, {gs})"
        );
    }
}

#[test]
fn campaign_worker_count_does_not_change_results() {
    let configs: Vec<ExperimentConfig> = (0..3)
        .map(|i| {
            let mut cfg = quick(11);
            cfg.name = format!("w{i}");
            cfg.seed = 100 + i as u64;
            cfg
        })
        .collect();
    let serial = Campaign::from_configs(configs.clone())
        .threads(1)
        .run()
        .unwrap();
    let parallel = Campaign::from_configs(configs).threads(8).run().unwrap();
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "thread count changed a result"
        );
    }
}

#[test]
fn resilient_campaign_with_faults_matches_clean_run_on_surviving_cells() {
    // Cross-crate resilience: a campaign where one cell always panics and
    // one recovers on retry must leave the healthy cells' results
    // byte-identical to a fault-free campaign, at any worker count.
    let configs: Vec<ExperimentConfig> = (0..4)
        .map(|i| {
            let mut cfg = quick(11);
            cfg.name = format!("cell-{i}");
            cfg.seed = 200 + i as u64;
            cfg
        })
        .collect();
    let clean = Campaign::from_configs(configs.clone()).run().unwrap();
    for threads in [1usize, 4] {
        let report = Campaign::from_configs(configs.clone())
            .threads(threads)
            .retry(skiptrain_core::RetrySpec::attempts(2))
            .observe_with(|_, cfg| {
                if cfg.name == "cell-2" {
                    panic!("permanent fault");
                }
                if cfg.seed == 201 {
                    panic!("transient fault on the configured seed");
                }
                Vec::new()
            })
            .run_resilient()
            .unwrap();
        assert_eq!(report.failures.len(), 1, "threads={threads}");
        assert_eq!(report.failures[0].name, "cell-2");
        for (i, cell) in report.results.iter().enumerate() {
            if i == 2 {
                assert!(cell.is_none(), "threads={threads}: doomed cell completed");
            } else if i == 1 {
                // Recovered on the retry seed: equal to a fresh run there.
                let mut fresh = configs[1].clone();
                fresh.seed = skiptrain_core::retry_seed(201, 2);
                let fresh = fresh.run();
                assert_eq!(
                    serde_json::to_string(cell.as_ref().unwrap()).unwrap(),
                    serde_json::to_string(&fresh).unwrap(),
                    "threads={threads}: retried cell diverged from fresh run"
                );
            } else {
                assert_eq!(
                    serde_json::to_string(cell.as_ref().unwrap()).unwrap(),
                    serde_json::to_string(&clean[i]).unwrap(),
                    "threads={threads}: healthy cell #{i} diverged under faults"
                );
            }
        }
    }
}

#[test]
fn early_stop_observer_truncates_the_run() {
    let cfg = quick(13);
    let experiment = Experiment::from_config(cfg).expect("valid");
    let data = experiment.build_data();

    let mut stop = EarlyStop::at_accuracy(0.0); // first evaluation triggers
    let result = experiment
        .run_observed(&data, &mut [&mut stop])
        .expect("valid run");
    // eval_every = 4 -> the first evaluation happens after round 4 and
    // stops the run there.
    assert_eq!(stop.triggered_at(), Some(4));
    assert_eq!(result.rounds, 4);
    assert_eq!(result.test_curve.len(), 1);

    // Without the observer the same experiment runs to completion.
    let full = experiment.run_on(&data).expect("valid run");
    assert_eq!(full.rounds, 12);
}

#[test]
fn energy_trace_observer_matches_ledger_totals() {
    let cfg = quick(17);
    let experiment = Experiment::from_config(cfg.clone()).expect("valid");
    let data = experiment.build_data();

    let mut trace = EnergyTraceObserver::new();
    let result = experiment
        .run_observed(&data, &mut [&mut trace])
        .expect("valid run");

    assert_eq!(trace.rows().len(), cfg.rounds);
    assert!(
        (trace.total_training_wh() - result.total_training_wh).abs() < 1e-9,
        "per-round stream must sum to the end-of-run total"
    );
    let streamed_events: u64 = trace.rows().iter().map(|r| r.trained_nodes as u64).sum();
    assert_eq!(streamed_events, result.node_train_events);
}
