//! Cross-crate energy accounting: simulation ledgers must match analytic
//! predictions from the energy substrate for every algorithm.

use skiptrain::energy::comm::{model_message_bytes, CommEnergyModel};
use skiptrain::energy::device::fleet;
use skiptrain::energy::trace::round_energy_wh;
use skiptrain::prelude::*;

fn tiny(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 12;
    cfg.rounds = 24;
    cfg.eval_every = 24;
    cfg.eval_max_samples = 100;
    cfg
}

#[test]
fn dpsgd_training_energy_matches_closed_form() {
    let cfg = tiny(1);
    let result = cfg.run();
    let per_round: f64 = fleet(cfg.nodes)
        .iter()
        .map(|d| round_energy_wh(&d.profile(), &cfg.energy.workload))
        .sum();
    let expected = per_round * cfg.rounds as f64;
    assert!(
        (result.total_training_wh - expected).abs() < 1e-9,
        "measured {} vs expected {expected}",
        result.total_training_wh
    );
}

#[test]
fn skiptrain_training_energy_matches_schedule_count() {
    let schedule = Schedule::new(3, 2);
    let mut cfg = tiny(2);
    cfg.algorithm = AlgorithmSpec::SkipTrain(schedule);
    let result = cfg.run();
    let per_round: f64 = fleet(cfg.nodes)
        .iter()
        .map(|d| round_energy_wh(&d.profile(), &cfg.energy.workload))
        .sum();
    let expected = per_round * schedule.count_train_rounds(cfg.rounds) as f64;
    assert!(
        (result.total_training_wh - expected).abs() < 1e-9,
        "measured {} vs expected {expected}",
        result.total_training_wh
    );
}

#[test]
fn comm_energy_matches_topology_and_rounds() {
    let cfg = tiny(3);
    let result = cfg.run();
    // 6-regular: every node sends and receives 6 messages per round.
    let comm = CommEnergyModel::paper_fit();
    let bytes = model_message_bytes(cfg.energy.workload.model_params);
    let per_round = (comm.tx_energy_wh(bytes) + comm.rx_energy_wh(bytes)) * 6.0 * cfg.nodes as f64;
    let expected = per_round * cfg.rounds as f64;
    assert!(
        (result.total_comm_wh - expected).abs() < 1e-9,
        "measured {} vs expected {expected}",
        result.total_comm_wh
    );
}

#[test]
fn comm_energy_is_schedule_independent() {
    // Sharing happens every round regardless of training: D-PSGD and
    // SkipTrain must report identical communication energy.
    let base = tiny(4);
    let dpsgd = base.run();
    let skiptrain = with_algorithm(base, AlgorithmSpec::SkipTrain(Schedule::new(4, 4))).run();
    assert!((dpsgd.total_comm_wh - skiptrain.total_comm_wh).abs() < 1e-12);
}

#[test]
fn training_dominates_communication() {
    // §1's asymmetry must hold in-simulation, not just analytically.
    let result = tiny(5).run();
    assert!(
        result.total_training_wh > 100.0 * result.total_comm_wh,
        "training {} Wh vs comm {} Wh",
        result.total_training_wh,
        result.total_comm_wh
    );
}

#[test]
fn constrained_energy_never_exceeds_budget_energy() {
    let mut cfg = tiny(6);
    cfg.energy = EnergySpec::cifar10_constrained().scaled_for_rounds(cfg.rounds, 1000);
    cfg.algorithm = AlgorithmSpec::SkipTrainConstrained(Schedule::new(2, 2));
    let budgets = cfg.energy.node_budgets(cfg.nodes);
    let energies = cfg.energy.node_energies(cfg.nodes);
    let result = cfg.run();
    let max_energy: f64 = budgets
        .iter()
        .zip(&energies)
        .map(|(&b, e)| b as f64 * e)
        .sum();
    assert!(
        result.total_training_wh <= max_energy + 1e-9,
        "spent {} Wh over budget {max_energy} Wh",
        result.total_training_wh
    );
}
