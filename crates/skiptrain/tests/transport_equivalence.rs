//! Transport fidelity: the zero-copy in-memory exchange and the full
//! serialize/decode path must produce bit-identical experiments when no
//! messages are dropped.

use skiptrain::prelude::*;

fn config(seed: u64, transport: TransportKind) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 10;
    cfg.rounds = 12;
    cfg.eval_every = 6;
    cfg.eval_max_samples = 200;
    cfg.transport = transport;
    cfg.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(2, 1));
    cfg
}

#[test]
fn serialized_lossless_is_bit_identical_to_memory() {
    let mem = config(1, TransportKind::Memory).run();
    let ser = config(
        1,
        TransportKind::Serialized {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
        },
    )
    .run();
    assert_eq!(
        mem.final_test.mean_accuracy.to_bits(),
        ser.final_test.mean_accuracy.to_bits(),
        "transports diverged"
    );
    for (a, b) in mem.test_curve.iter().zip(&ser.test_curve) {
        assert_eq!(a.mean_accuracy.to_bits(), b.mean_accuracy.to_bits());
    }
    assert_eq!(mem.node_train_events, ser.node_train_events);
}

#[test]
fn lossy_transport_changes_results_but_still_learns() {
    let lossless = config(2, TransportKind::Memory).run();
    let lossy = config(
        2,
        TransportKind::Serialized {
            drop_prob: 0.3,
            corrupt_prob: 0.0,
        },
    )
    .run();
    assert_ne!(
        lossless.final_test.mean_accuracy.to_bits(),
        lossy.final_test.mean_accuracy.to_bits(),
        "dropping 30% of messages should perturb results"
    );
    assert!(
        lossy.final_test.mean_accuracy > 0.25,
        "lossy run collapsed: {}",
        lossy.final_test.mean_accuracy
    );
}

#[test]
fn lossy_transport_reports_less_rx_energy() {
    let lossless = config(
        3,
        TransportKind::Serialized {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
        },
    )
    .run();
    let lossy = config(
        3,
        TransportKind::Serialized {
            drop_prob: 0.5,
            corrupt_prob: 0.0,
        },
    )
    .run();
    assert!(
        lossy.total_comm_wh < lossless.total_comm_wh,
        "dropped messages must not be charged at the receiver: {} vs {}",
        lossy.total_comm_wh,
        lossless.total_comm_wh
    );
}

#[test]
fn corruption_is_accounted_exactly_like_drops_end_to_end() {
    // Pinned fault-injection guarantee: with the partitioned fate draw, a
    // corruption-only run loses exactly the message set an equal-probability
    // drop-only run loses — full experiments must be bit-identical in
    // accuracy, model, energy ledger, and events; only the corruption
    // counter differs.
    let dropped = config(
        5,
        TransportKind::Serialized {
            drop_prob: 0.35,
            corrupt_prob: 0.0,
        },
    )
    .run();
    let corrupted = config(
        5,
        TransportKind::Serialized {
            drop_prob: 0.0,
            corrupt_prob: 0.35,
        },
    )
    .run();
    assert_eq!(
        dropped.final_test.mean_accuracy.to_bits(),
        corrupted.final_test.mean_accuracy.to_bits(),
        "corruption must degrade exactly like drops"
    );
    assert_eq!(dropped.final_mean_model, corrupted.final_mean_model);
    assert_eq!(
        dropped.total_comm_wh.to_bits(),
        corrupted.total_comm_wh.to_bits(),
        "corrupted frames must charge tx and skip rx, byte-accurately like drops"
    );
    assert_eq!(dropped.node_train_events, corrupted.node_train_events);
    assert_eq!(dropped.corrupted_messages, 0);
    assert!(
        corrupted.corrupted_messages > 0,
        "corruption run must count its rejected frames"
    );
}

#[test]
fn corrupted_frames_charge_tx_but_never_rx() {
    let lossless = config(
        6,
        TransportKind::Serialized {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
        },
    )
    .run();
    let corrupted = config(
        6,
        TransportKind::Serialized {
            drop_prob: 0.0,
            corrupt_prob: 0.5,
        },
    )
    .run();
    assert!(
        corrupted.total_comm_wh < lossless.total_comm_wh,
        "corrupted messages must not be charged at the receiver: {} vs {}",
        corrupted.total_comm_wh,
        lossless.total_comm_wh
    );
}

#[test]
fn corruption_equivalence_holds_under_topk_and_error_feedback() {
    // The drop-equivalence must survive the compressed and error-feedback
    // paths too: replicas hold (fold to self) on a corrupted edge exactly
    // as on a dropped one.
    for feedback in [None, Some(0.8)] {
        let mut dropped_cfg = config(
            7,
            TransportKind::Serialized {
                drop_prob: 0.3,
                corrupt_prob: 0.0,
            },
        );
        dropped_cfg.codec = ModelCodec::TopK { k: 32 };
        dropped_cfg.feedback_beta = feedback;
        let mut corrupted_cfg = config(
            7,
            TransportKind::Serialized {
                drop_prob: 0.0,
                corrupt_prob: 0.3,
            },
        );
        corrupted_cfg.codec = ModelCodec::TopK { k: 32 };
        corrupted_cfg.feedback_beta = feedback;
        let dropped = dropped_cfg.run();
        let corrupted = corrupted_cfg.run();
        assert_eq!(
            dropped.final_test.mean_accuracy.to_bits(),
            corrupted.final_test.mean_accuracy.to_bits(),
            "feedback={feedback:?}: corruption must degrade exactly like drops"
        );
        assert_eq!(
            dropped.total_comm_wh.to_bits(),
            corrupted.total_comm_wh.to_bits(),
            "feedback={feedback:?}: ledger must be bit-identical"
        );
    }
}

#[test]
fn heavy_loss_increases_node_disagreement() {
    let lossless = config(4, TransportKind::Memory).run();
    let lossy = config(
        4,
        TransportKind::Serialized {
            drop_prob: 0.6,
            corrupt_prob: 0.0,
        },
    )
    .run();
    assert!(
        lossy.final_test.std_accuracy >= lossless.final_test.std_accuracy,
        "loss should not tighten consensus: {} vs {}",
        lossy.final_test.std_accuracy,
        lossless.final_test.std_accuracy
    );
}
