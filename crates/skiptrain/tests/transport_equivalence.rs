//! Transport fidelity: the zero-copy in-memory exchange and the full
//! serialize/decode path must produce bit-identical experiments when no
//! messages are dropped.

use skiptrain::prelude::*;

fn config(seed: u64, transport: TransportKind) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 10;
    cfg.rounds = 12;
    cfg.eval_every = 6;
    cfg.eval_max_samples = 200;
    cfg.transport = transport;
    cfg.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(2, 1));
    cfg
}

#[test]
fn serialized_lossless_is_bit_identical_to_memory() {
    let mem = config(1, TransportKind::Memory).run();
    let ser = config(1, TransportKind::Serialized { drop_prob: 0.0 }).run();
    assert_eq!(
        mem.final_test.mean_accuracy.to_bits(),
        ser.final_test.mean_accuracy.to_bits(),
        "transports diverged"
    );
    for (a, b) in mem.test_curve.iter().zip(&ser.test_curve) {
        assert_eq!(a.mean_accuracy.to_bits(), b.mean_accuracy.to_bits());
    }
    assert_eq!(mem.node_train_events, ser.node_train_events);
}

#[test]
fn lossy_transport_changes_results_but_still_learns() {
    let lossless = config(2, TransportKind::Memory).run();
    let lossy = config(2, TransportKind::Serialized { drop_prob: 0.3 }).run();
    assert_ne!(
        lossless.final_test.mean_accuracy.to_bits(),
        lossy.final_test.mean_accuracy.to_bits(),
        "dropping 30% of messages should perturb results"
    );
    assert!(
        lossy.final_test.mean_accuracy > 0.25,
        "lossy run collapsed: {}",
        lossy.final_test.mean_accuracy
    );
}

#[test]
fn lossy_transport_reports_less_rx_energy() {
    let lossless = config(3, TransportKind::Serialized { drop_prob: 0.0 }).run();
    let lossy = config(3, TransportKind::Serialized { drop_prob: 0.5 }).run();
    assert!(
        lossy.total_comm_wh < lossless.total_comm_wh,
        "dropped messages must not be charged at the receiver: {} vs {}",
        lossy.total_comm_wh,
        lossless.total_comm_wh
    );
}

#[test]
fn heavy_loss_increases_node_disagreement() {
    let lossless = config(4, TransportKind::Memory).run();
    let lossy = config(4, TransportKind::Serialized { drop_prob: 0.6 }).run();
    assert!(
        lossy.final_test.std_accuracy >= lossless.final_test.std_accuracy,
        "loss should not tighten consensus: {} vs {}",
        lossy.final_test.std_accuracy,
        lossless.final_test.std_accuracy
    );
}
