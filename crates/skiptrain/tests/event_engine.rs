//! Event-driven engine invariants: the discrete-event core must reproduce
//! the legacy lockstep loop bit for bit at zero latency, stay deterministic
//! across worker-thread counts, keep energy-ledger totals conservation-exact
//! under churn, and make seeded-latency drops exactly reproducible.

use skiptrain::algorithms::asyncgossip::run_async_gossip;
use skiptrain::data::synth::{MixtureSpec, MixtureTask};
use skiptrain::prelude::*;
use skiptrain::topology::regular::random_regular;

/// A small engine-level simulation (mixture task, MLP, 4-regular graph)
/// mirroring the engine crate's own test fixture.
fn tiny_sim(n: usize, seed: u64) -> Simulation {
    let spec = MixtureSpec {
        num_classes: 4,
        feature_dim: 6,
        modes_per_class: 1,
        separation: 1.6,
        noise: 0.5,
    };
    let task = MixtureTask::new(spec, 99);
    let datasets: Vec<Dataset> = (0..n).map(|i| task.sample(60, 10 + i as u64)).collect();
    let models: Vec<Sequential> = (0..n)
        .map(|i| skiptrain::nn::zoo::mlp(&[6, 12, 4], seed + i as u64))
        .collect();
    let graph = random_regular(n, 4, seed);
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    Simulation::new(
        models,
        datasets,
        graph,
        mixing,
        SimulationConfig::minimal(seed, 8, 2, 0.1),
    )
}

/// A quick runner-level config matching the determinism suite's shape.
fn runner_config(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 12;
    cfg.rounds = 16;
    cfg.eval_every = 8;
    cfg.eval_max_samples = 200;
    cfg.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(2, 2));
    cfg
}

fn assert_params_bit_identical(a: &Simulation, b: &Simulation, ctx: &str) {
    for node in 0..a.len() {
        let (pa, pb) = (a.node_params(node), b.node_params(node));
        assert!(
            pa.iter().zip(pb).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{ctx}: node {node} parameters diverged"
        );
    }
}

#[test]
fn event_path_at_zero_latency_is_bit_identical_to_lockstep() {
    let n = 8;
    let mut legacy = tiny_sim(n, 42);
    let mut event = tiny_sim(n, 42);
    let mut engine = EventEngine::lockstep(n, 42);
    for round in 0..6usize {
        // mixed Train/SyncOnly schedules must agree too, not just all-train
        let actions: Vec<RoundAction> = (0..n)
            .map(|i| {
                if (i + round) % 3 == 0 {
                    RoundAction::SyncOnly
                } else {
                    RoundAction::Train
                }
            })
            .collect();
        legacy.run_round(&actions);
        event
            .try_run_round_event(&actions, None, &mut engine)
            .expect("event round failed");
        assert_params_bit_identical(&legacy, &event, &format!("round {round}"));
    }
    assert_eq!(
        legacy.ledger().total_wh().to_bits(),
        event.ledger().total_wh().to_bits(),
        "energy totals diverged between lockstep and event paths"
    );
    // at least one node trains every round, so virtual time advances by
    // exactly one nominal training span per round
    assert_eq!(engine.now(), 6 * BASE_TRAIN_TICKS);
    assert_eq!(
        event.ledger().round_end_ticks().len(),
        6,
        "event path must stamp every round boundary"
    );
    assert_eq!(engine.stats().late_messages, 0);
}

#[test]
fn barrier_semantics_stretch_time_but_never_results() {
    let n = 8;
    let mut legacy = tiny_sim(n, 7);
    let mut slow = tiny_sim(n, 7);
    let mut engine = EventEngine::new(
        n,
        7,
        ComputeProfile::StragglerTail {
            tail_prob: 0.3,
            tail_factor: 4.0,
        },
        LatencyModel::Seeded {
            mean_ticks: BASE_TRAIN_TICKS / 2,
            jitter: 0.5,
        },
        None,
        RoundSemantics::Barrier,
    );
    let actions = vec![RoundAction::Train; n];
    for _ in 0..6 {
        legacy.run_round(&actions);
        slow.try_run_round_event(&actions, None, &mut engine)
            .expect("barrier round failed");
    }
    assert_params_bit_identical(&legacy, &slow, "barrier");
    assert_eq!(
        legacy.ledger().total_wh().to_bits(),
        slow.ledger().total_wh().to_bits()
    );
    // stragglers and latency stretch the virtual clock...
    assert!(
        engine.now() > 6 * BASE_TRAIN_TICKS,
        "stragglers must stretch virtual time: {}",
        engine.now()
    );
    // ...but a barrier never times a message out
    assert_eq!(engine.stats().late_messages, 0);
}

#[test]
fn sync_runner_timing_is_metadata_only() {
    let base = runner_config(11).run();
    let mut cfg = runner_config(11);
    cfg.timing = TimingSpec {
        compute: ComputeProfile::StragglerTail {
            tail_prob: 0.25,
            tail_factor: 3.0,
        },
        latency: LatencyModel::Constant {
            ticks: BASE_TRAIN_TICKS / 3,
        },
    };
    let slow = cfg.run();
    assert_eq!(
        base.final_test.mean_accuracy.to_bits(),
        slow.final_test.mean_accuracy.to_bits(),
        "barrier timing must not perturb results"
    );
    for (a, b) in base.test_curve.iter().zip(&slow.test_curve) {
        assert_eq!(a.mean_accuracy.to_bits(), b.mean_accuracy.to_bits());
    }
    assert_eq!(
        base.total_training_wh.to_bits(),
        slow.total_training_wh.to_bits()
    );
    assert_eq!(base.total_comm_wh.to_bits(), slow.total_comm_wh.to_bits());
    assert!(
        slow.events.virtual_ticks > base.events.virtual_ticks,
        "stragglers and latency must stretch virtual time: {} vs {}",
        slow.events.virtual_ticks,
        base.events.virtual_ticks
    );
    assert_eq!(slow.events.late_messages, 0);
}

#[test]
fn event_runs_are_thread_count_invariant() {
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut cfg = runner_config(13);
            cfg.timing = TimingSpec {
                compute: ComputeProfile::StragglerTail {
                    tail_prob: 0.3,
                    tail_factor: 4.0,
                },
                latency: LatencyModel::Seeded {
                    mean_ticks: BASE_TRAIN_TICKS / 2,
                    jitter: 0.5,
                },
            };
            cfg.churn = Some(ChurnSpec {
                leave_prob: 0.05,
                rejoin_prob: 0.5,
            });
            let data = cfg.data.build(cfg.nodes, cfg.seed);
            run_async_gossip(&cfg, &data, 0.6)
        })
    };
    let r1 = run(1);
    let r2 = run(2);
    let r7 = run(7);
    for other in [&r2, &r7] {
        assert_eq!(
            r1.final_test.mean_accuracy.to_bits(),
            other.final_test.mean_accuracy.to_bits(),
            "event queue order leaked thread scheduling into results"
        );
        for (a, b) in r1.test_curve.iter().zip(&other.test_curve) {
            assert_eq!(a.mean_accuracy.to_bits(), b.mean_accuracy.to_bits());
        }
        assert_eq!(r1.events, other.events);
    }
}

#[test]
fn full_churn_starves_the_fleet_without_charging_energy() {
    let mut cfg = runner_config(17);
    cfg.churn = Some(ChurnSpec {
        leave_prob: 1.0,
        rejoin_prob: 0.0,
    });
    let r = cfg.run();
    assert_eq!(
        r.total_training_wh, 0.0,
        "absent nodes must not accrue training energy"
    );
    assert_eq!(
        r.total_comm_wh, 0.0,
        "absent nodes must not accrue communication energy"
    );
    assert_eq!(r.events.leaves, cfg.nodes as u64, "every node leaves once");
    assert_eq!(r.events.joins, 0);
}

#[test]
fn churned_ledger_totals_stay_conservation_exact() {
    let n = 10;
    let rounds = 8;
    let mut sim = tiny_sim(n, 23);
    let mut engine = EventEngine::new(
        n,
        23,
        ComputeProfile::Homogeneous,
        LatencyModel::Zero,
        Some(ChurnModel {
            leave_prob: 0.2,
            rejoin_prob: 0.5,
        }),
        RoundSemantics::Barrier,
    );
    let actions = vec![RoundAction::Train; n];
    for _ in 0..rounds {
        sim.try_run_round_event(&actions, None, &mut engine)
            .expect("churned round failed");
    }
    let stats = engine.stats();
    assert!(stats.leaves > 0, "churn draws never fired");
    assert!(stats.joins > 0, "rejoin draws never fired");
    let ledger = sim.ledger();
    let node_sum: f64 = (0..n)
        .map(|i| ledger.node_training_wh(i) + ledger.node_comm_wh(i))
        .sum();
    let total = ledger.total_wh();
    assert!(
        (total - node_sum).abs() <= 1e-12 * (1.0 + total.abs()),
        "ledger total drifted from per-node sum: {total} vs {node_sum}"
    );
    let cumulative = *ledger.cumulative_by_round().last().unwrap();
    assert!(
        (total - cumulative).abs() <= 1e-12 * (1.0 + total.abs()),
        "cumulative-by-round lost energy: {total} vs {cumulative}"
    );
    assert_eq!(ledger.round_end_ticks().len(), rounds);
    // absences must strictly reduce spend vs the fully present fleet
    let mut full = tiny_sim(n, 23);
    for _ in 0..rounds {
        full.run_round(&actions);
    }
    assert!(
        total < full.ledger().total_wh(),
        "churned run should spend less energy than a fully present one"
    );
}

#[test]
fn seeded_latency_drops_are_reproducible() {
    let run = |latency: LatencyModel| {
        let mut cfg = runner_config(19);
        cfg.timing = TimingSpec {
            compute: ComputeProfile::Homogeneous,
            latency,
        };
        let data = cfg.data.build(cfg.nodes, cfg.seed);
        run_async_gossip(&cfg, &data, 0.7)
    };
    let jittered = LatencyModel::Seeded {
        mean_ticks: BASE_TRAIN_TICKS / 4,
        jitter: 0.9,
    };
    let a = run(jittered);
    let b = run(jittered);
    assert_eq!(
        a.final_test.mean_accuracy.to_bits(),
        b.final_test.mean_accuracy.to_bits(),
        "seeded latency must be exactly reproducible"
    );
    assert_eq!(a.events, b.events);
    assert!(
        a.events.late_messages > 0,
        "deadline semantics with jitter straddling the slack must drop messages"
    );
    // late edges fold their weight to self, so drops perturb the trajectory
    let zero = run(LatencyModel::Zero);
    assert_eq!(zero.events.late_messages, 0);
    assert_ne!(
        a.final_test.mean_accuracy.to_bits(),
        zero.final_test.mean_accuracy.to_bits(),
        "late drops should perturb results relative to instant delivery"
    );
}
