//! All-reduce and mixing-algebra equivalences, driven through the engine:
//! uniform complete-graph mixing equals the exact global average; sync-only
//! rounds preserve the mean model; repeated gossip reaches consensus.

use skiptrain::prelude::*;
use skiptrain_data::synth::{MixtureSpec, MixtureTask};
use skiptrain_topology::regular::random_regular;

fn build_sim(n: usize, graph: Graph, mixing: MixingMatrix, seed: u64) -> (Simulation, Dataset) {
    let task = MixtureTask::new(
        MixtureSpec {
            num_classes: 4,
            feature_dim: 8,
            modes_per_class: 1,
            separation: 1.5,
            noise: 0.5,
        },
        seed,
    );
    let datasets: Vec<Dataset> = (0..n).map(|i| task.sample(50, 10 + i as u64)).collect();
    let test = task.sample(200, 999);
    let models: Vec<Sequential> = (0..n)
        .map(|i| {
            ModelKind::Mlp {
                dims: vec![8, 10, 4],
            }
            .build(seed * 1000 + i as u64)
        })
        .collect();
    let config = SimulationConfig::minimal(seed, 8, 2, 0.1);
    (
        Simulation::new(models, datasets, graph, mixing, config),
        test,
    )
}

#[test]
fn complete_uniform_mixing_is_exact_averaging() {
    let n = 8;
    let (mut sim, _) = build_sim(n, Graph::complete(n), MixingMatrix::uniform_complete(n), 1);
    let mean_before = sim.mean_params();
    sim.run_round(&vec![RoundAction::SyncOnly; n]);
    // after one uniform sync round every node holds the exact average
    for i in 0..n {
        let p = sim.node_params(i);
        for (a, b) in p.iter().zip(&mean_before) {
            assert!((a - b).abs() < 1e-5, "node {i} not at the average");
        }
    }
    assert!(sim.disagreement() < 1e-12);
}

#[test]
fn sync_rounds_preserve_mean_under_mh_weights() {
    let n = 12;
    let graph = random_regular(n, 4, 3);
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    let (mut sim, _) = build_sim(n, graph, mixing, 3);
    // diversify first
    sim.run_round(&vec![RoundAction::Train; n]);
    let mean_before = sim.mean_params();
    for _ in 0..5 {
        sim.run_round(&vec![RoundAction::SyncOnly; n]);
    }
    let mean_after = sim.mean_params();
    let drift: f32 = mean_before
        .iter()
        .zip(&mean_after)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    assert!(
        drift < 1e-4,
        "doubly stochastic mixing drifted the mean by {drift}"
    );
}

#[test]
fn repeated_gossip_converges_to_consensus() {
    let n = 16;
    let graph = random_regular(n, 4, 5);
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    let (mut sim, _) = build_sim(n, graph, mixing, 5);
    sim.run_round(&vec![RoundAction::Train; n]);
    let d0 = sim.disagreement();
    assert!(d0 > 0.0);
    for _ in 0..60 {
        sim.run_round(&vec![RoundAction::SyncOnly; n]);
    }
    assert!(
        sim.disagreement() < d0 * 1e-4,
        "gossip failed to reach consensus: {} -> {}",
        d0,
        sim.disagreement()
    );
}

#[test]
fn mean_model_matches_allreduce_on_complete_graph() {
    // On the complete graph with uniform weights, one sync round makes each
    // node's model equal the mean model, so per-node accuracy = mean-model
    // accuracy.
    let n = 6;
    let (mut sim, test) = build_sim(n, Graph::complete(n), MixingMatrix::uniform_complete(n), 7);
    sim.run_round(&vec![RoundAction::Train; n]);
    sim.run_round(&vec![RoundAction::SyncOnly; n]);
    let stats = sim.evaluate(&test, usize::MAX);
    let (mean_acc, _) = sim.evaluate_mean_model(&test, usize::MAX);
    assert!((stats.mean_accuracy - mean_acc).abs() < 1e-6);
    assert!(stats.std_accuracy < 1e-9);
}

#[test]
fn per_round_mixing_override_preserves_mean_and_contracts() {
    use skiptrain::topology::matching::random_maximal_matching;
    let n = 12;
    let graph = random_regular(n, 4, 11);
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    let (mut sim, _) = build_sim(n, graph.clone(), mixing, 11);
    sim.run_round(&vec![RoundAction::Train; n]);
    let mean_before = sim.mean_params();
    let d_before = sim.disagreement();
    // 30 asynchronous pairwise ticks
    for t in 0..30u64 {
        let pairs = random_maximal_matching(&graph, t);
        let pairwise = MixingMatrix::pairwise(n, &pairs);
        sim.run_round_with_mixing(&vec![RoundAction::SyncOnly; n], &pairwise);
    }
    let drift: f32 = mean_before
        .iter()
        .zip(sim.mean_params())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    assert!(drift < 1e-4, "pairwise gossip drifted the mean by {drift}");
    assert!(
        sim.disagreement() < d_before * 0.1,
        "pairwise gossip failed to contract: {} -> {}",
        d_before,
        sim.disagreement()
    );
}

#[test]
fn dpsgd_on_complete_graph_beats_sparse_on_skewed_data() {
    // A denser topology mixes away label-skew bias faster — the Figure 1
    // motivation, checked end to end.
    let mut sparse_cfg = cifar_config(Scale::Quick, 21);
    sparse_cfg.nodes = 16;
    sparse_cfg.rounds = 24;
    sparse_cfg.eval_every = 24;
    sparse_cfg.eval_max_samples = 400;
    sparse_cfg.topology = TopologySpec::Ring;
    let mut complete_cfg = sparse_cfg.clone();
    complete_cfg.topology = TopologySpec::Complete;

    let sparse = sparse_cfg.run();
    let complete = complete_cfg.run();
    assert!(
        complete.final_test.mean_accuracy > sparse.final_test.mean_accuracy,
        "complete {} should beat ring {}",
        complete.final_test.mean_accuracy,
        sparse.final_test.mean_accuracy
    );
}
