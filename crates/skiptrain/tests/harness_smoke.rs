//! Smoke tests for the figure/table regeneration machinery (the library
//! entry points the bench binaries wrap).

use skiptrain::prelude::*;
use skiptrain_core::sweep::grid_search;

fn micro(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 10;
    cfg.rounds = 12;
    cfg.eval_every = 6;
    cfg.eval_max_samples = 150;
    cfg.data = DataSpec::CifarLike {
        feature_dim: 12,
        samples_per_node: 40,
        test_samples: 400,
        shards_per_node: 2,
        separation: 1.2,
        noise: 0.8,
        modes_per_class: 2,
    };
    cfg.hidden_dim = 12;
    cfg.local_steps = 4;
    cfg
}

#[test]
fn grid_search_covers_all_cells_and_picks_a_best() {
    let sweep = grid_search(&micro(1), &[1, 2]);
    assert_eq!(sweep.cells.len(), 4);
    for gt in [1, 2] {
        for gs in [1, 2] {
            let cell = sweep.cell(gt, gs).expect("cell missing");
            assert!(cell.val_accuracy > 0.0 && cell.val_accuracy <= 1.0);
            assert!(cell.training_energy_wh > 0.0);
        }
    }
    let best = sweep.best();
    assert!(sweep
        .cells
        .iter()
        .all(|c| c.val_accuracy <= best.val_accuracy));
}

#[test]
fn grid_energy_depends_only_on_train_fraction() {
    let sweep = grid_search(&micro(2), &[1, 2]);
    // (1,1) and (2,2) both train half the rounds → identical energy
    let e11 = sweep.cell(1, 1).unwrap().training_energy_wh;
    let e22 = sweep.cell(2, 2).unwrap().training_energy_wh;
    assert!((e11 - e22).abs() < 1e-9, "{e11} vs {e22}");
    // (2,1) trains 2/3 of rounds → strictly more
    assert!(sweep.cell(2, 1).unwrap().training_energy_wh > e11);
}

#[test]
fn mean_model_curve_is_recorded_when_enabled() {
    let mut cfg = micro(3);
    cfg.record_mean_model = true;
    let result = cfg.run();
    assert_eq!(result.mean_model_curve.len(), result.test_curve.len());
    // the averaged model never does *worse* than 10 points below the nodes
    for ((_, mean_acc), point) in result.mean_model_curve.iter().zip(&result.test_curve) {
        assert!(mean_acc + 0.10 >= point.mean_accuracy);
    }
}

#[test]
fn experiment_results_serialize_to_json() {
    let result = micro(4).run();
    let json = serde_json::to_string(&result).expect("result must serialize");
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value["nodes"], 10);
    assert!(value["test_curve"].as_array().unwrap().len() >= 2);
}

#[test]
fn schedule_render_matches_policy_decisions() {
    // fig2's rendering must agree with what the policy actually does
    let schedule = Schedule::new(3, 2);
    let mut policy = SkipTrainPolicy::new(schedule);
    let mut actions = vec![RoundAction::SyncOnly; 2];
    let rendered = schedule.render(15);
    for (t, expected) in rendered.chars().enumerate() {
        skiptrain::algorithms::RoundPolicy::decide(&mut policy, t, &mut actions);
        let got = if actions[0] == RoundAction::Train {
            'T'
        } else {
            'S'
        };
        assert_eq!(got, expected, "round {t}");
    }
}
