//! Reproducibility: results are bit-identical across runs and across rayon
//! thread counts (all randomness lives in per-node derived streams).

use skiptrain::prelude::*;

fn config(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 12;
    cfg.rounds = 16;
    cfg.eval_every = 8;
    cfg.eval_max_samples = 200;
    cfg.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(2, 2));
    cfg
}

#[test]
fn identical_runs_are_bit_identical() {
    let a = config(11).run();
    let b = config(11).run();
    assert_eq!(
        a.final_test.mean_accuracy.to_bits(),
        b.final_test.mean_accuracy.to_bits()
    );
    assert_eq!(a.node_train_events, b.node_train_events);
    assert_eq!(a.total_training_wh.to_bits(), b.total_training_wh.to_bits());
    for (pa, pb) in a.test_curve.iter().zip(&b.test_curve) {
        assert_eq!(pa.mean_accuracy.to_bits(), pb.mean_accuracy.to_bits());
    }
}

#[test]
fn different_seeds_differ() {
    let a = config(11).run();
    let b = config(12).run();
    assert_ne!(
        a.final_test.mean_accuracy.to_bits(),
        b.final_test.mean_accuracy.to_bits()
    );
}

#[test]
fn results_independent_of_thread_count() {
    let run_with_threads = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| config(13).run())
    };
    let single = run_with_threads(1);
    let multi = run_with_threads(8);
    assert_eq!(
        single.final_test.mean_accuracy.to_bits(),
        multi.final_test.mean_accuracy.to_bits(),
        "thread count changed the result"
    );
    assert_eq!(single.node_train_events, multi.node_train_events);
}

#[test]
fn constrained_policy_is_deterministic_end_to_end() {
    let mut cfg = config(14);
    cfg.energy = EnergySpec::cifar10_constrained().scaled_for_rounds(cfg.rounds, 1000);
    cfg.algorithm = AlgorithmSpec::SkipTrainConstrained(Schedule::new(2, 2));
    let a = cfg.run();
    let b = cfg.run();
    assert_eq!(a.node_train_events, b.node_train_events);
    assert_eq!(
        a.final_test.mean_accuracy.to_bits(),
        b.final_test.mean_accuracy.to_bits()
    );
}
