//! End-to-end convergence tests: every algorithm learns on a small
//! instance, and the headline energy relation (SkipTrain = half of D-PSGD)
//! holds exactly.

use skiptrain::prelude::*;

fn tiny(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 16;
    cfg.rounds = 32;
    cfg.eval_every = 8;
    cfg.eval_max_samples = 300;
    cfg.data = DataSpec::CifarLike {
        feature_dim: 16,
        samples_per_node: 60,
        test_samples: 600,
        shards_per_node: 2,
        separation: 1.2,
        noise: 0.7,
        modes_per_class: 2,
    };
    cfg.hidden_dim = 16;
    cfg.local_steps = 6;
    cfg
}

#[test]
fn dpsgd_learns_above_chance() {
    let result = tiny(1).run();
    // 10 classes → chance is 10%
    assert!(
        result.final_test.mean_accuracy > 0.35,
        "D-PSGD stayed near chance: {}",
        result.final_test.mean_accuracy
    );
    // and improves over the first evaluation
    let first = result.test_curve.first().unwrap().mean_accuracy;
    assert!(result.final_test.mean_accuracy > first);
}

#[test]
fn skiptrain_learns_and_halves_energy() {
    let base = tiny(2);
    let dpsgd = base.run();
    let skiptrain = with_algorithm(base, AlgorithmSpec::SkipTrain(Schedule::new(4, 4))).run();
    assert!(skiptrain.final_test.mean_accuracy > 0.35);
    // (4,4) over 32 rounds = exactly half the training rounds
    assert_eq!(skiptrain.node_train_events * 2, dpsgd.node_train_events);
    let ratio = skiptrain.total_training_wh / dpsgd.total_training_wh;
    assert!((ratio - 0.5).abs() < 1e-9, "energy ratio {ratio} != 0.5");
}

#[test]
fn skiptrain_not_much_worse_than_dpsgd_at_equal_rounds() {
    // The paper's headline: equal-or-better accuracy at half the energy.
    // At this toy scale we assert "within a few points or better".
    let base = tiny(3);
    let dpsgd = base.run();
    let skiptrain = with_algorithm(base, AlgorithmSpec::SkipTrain(Schedule::new(4, 4))).run();
    assert!(
        skiptrain.final_test.mean_accuracy > dpsgd.final_test.mean_accuracy - 0.08,
        "skiptrain {} far below dpsgd {}",
        skiptrain.final_test.mean_accuracy,
        dpsgd.final_test.mean_accuracy
    );
}

#[test]
fn constrained_respects_budgets_and_learns() {
    let mut cfg = tiny(4);
    cfg.energy = EnergySpec::cifar10_constrained().scaled_for_rounds(cfg.rounds, 1000);
    cfg.algorithm = AlgorithmSpec::SkipTrainConstrained(Schedule::new(4, 4));
    let budgets = cfg.energy.node_budgets(cfg.nodes);
    let result = cfg.run();
    let total_budget: u64 = budgets.iter().map(|&b| b as u64).sum();
    assert!(
        result.node_train_events <= total_budget,
        "train events {} exceed budget {total_budget}",
        result.node_train_events
    );
    assert!(result.final_test.mean_accuracy > 0.3);
}

#[test]
fn greedy_respects_budgets() {
    let mut cfg = tiny(5);
    cfg.energy = EnergySpec::cifar10_constrained().scaled_for_rounds(cfg.rounds, 1000);
    cfg.algorithm = AlgorithmSpec::Greedy;
    let budgets = cfg.energy.node_budgets(cfg.nodes);
    let result = cfg.run();
    let expected: u64 = budgets
        .iter()
        .map(|&b| (b as u64).min(cfg.rounds as u64))
        .sum();
    // Greedy trains exactly min(budget, rounds) per node.
    assert_eq!(result.node_train_events, expected);
}

#[test]
fn femnist_like_setup_learns() {
    let mut cfg = femnist_config(Scale::Quick, 6);
    cfg.nodes = 16;
    cfg.rounds = 32;
    cfg.eval_max_samples = 300;
    let result = cfg.run();
    // 47 classes → chance ≈ 2%
    assert!(
        result.final_test.mean_accuracy > 0.3,
        "FEMNIST-like failed to learn: {}",
        result.final_test.mean_accuracy
    );
}

#[test]
fn accuracy_improves_with_denser_topology() {
    // Paper Table 3: D-PSGD accuracy grows with degree under label skew.
    let mut accs = Vec::new();
    for degree in [4usize, 10] {
        let mut cfg = tiny(7);
        cfg.topology = TopologySpec::Regular { degree };
        accs.push(cfg.run().final_test.mean_accuracy);
    }
    assert!(
        accs[1] > accs[0] - 0.05,
        "denser topology should not hurt: d=4 {} vs d=10 {}",
        accs[0],
        accs[1]
    );
}
