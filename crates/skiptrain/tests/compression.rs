//! Cross-crate compression scenarios: codec choice must trade communication
//! energy against accuracy monotonically, without touching the training
//! energy axis, and the lossless codec must reproduce the uncompressed
//! baseline bit-for-bit.

// The deprecated builder compression shims are exercised on purpose.
#![allow(deprecated)]

use skiptrain::prelude::*;

fn tiny(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 12;
    cfg.rounds = 24;
    cfg.eval_every = 24;
    cfg.eval_max_samples = 200;
    cfg
}

fn sim_params(cfg: &ExperimentConfig) -> usize {
    cfg.model_kind().build(0).param_count()
}

#[test]
fn dense_codec_is_a_bitwise_noop() {
    let base = tiny(1);
    let mut explicit = base.clone();
    explicit.codec = ModelCodec::DenseF32;
    let a = base.run();
    let b = explicit.run();
    assert_eq!(
        a.final_test.mean_accuracy.to_bits(),
        b.final_test.mean_accuracy.to_bits()
    );
    assert_eq!(a.total_comm_wh.to_bits(), b.total_comm_wh.to_bits());
    assert_eq!(a.final_mean_model, b.final_mean_model);
}

#[test]
fn frontier_comm_energy_drops_monotonically_with_bounded_accuracy_loss() {
    let base = tiny(2);
    // top-k costs 8 bytes per kept parameter (charged at the same kept
    // fraction of the nominal model), so only fractions below 1/8 undercut
    // 8-bit quantization on the wire
    let k = sim_params(&base) / 16;
    let codecs = [
        ModelCodec::DenseF32,
        ModelCodec::QuantizedU16,
        ModelCodec::QuantizedU8,
        ModelCodec::TopK { k },
    ];
    let data = base.data.build(base.nodes, base.seed);
    let results: Vec<ExperimentResult> = codecs
        .iter()
        .map(|&codec| {
            let mut cfg = base.clone();
            cfg.codec = codec;
            cfg.run_on(&data)
        })
        .collect();

    let dense_acc = results[0].final_test.mean_accuracy;
    for w in results.windows(2) {
        assert!(
            w[1].total_comm_wh < w[0].total_comm_wh,
            "comm energy must drop: {} -> {}",
            w[0].total_comm_wh,
            w[1].total_comm_wh
        );
    }
    for (codec, r) in codecs.iter().zip(&results).skip(1) {
        // Quantization error is tiny → near-dense accuracy. Aggressive
        // top-k (6% kept, no error feedback) pays a real consensus price
        // on this hard non-IID task, but must still clearly beat 10-class
        // chance (0.1).
        let floor = match codec {
            ModelCodec::TopK { .. } => 0.15,
            _ => dense_acc - 0.1,
        };
        assert!(
            r.final_test.mean_accuracy > floor,
            "{codec:?}: accuracy loss too large ({} vs dense {dense_acc})",
            r.final_test.mean_accuracy
        );
        assert!(
            (r.total_training_wh - results[0].total_training_wh).abs() < 1e-9,
            "compression must not touch training energy"
        );
    }
}

#[test]
fn quantized_comm_energy_matches_codec_bytes_analytically() {
    // 6-regular static topology: comm Wh = rounds · n · 6 · (tx + rx) at
    // the codec's per-message bytes for the nominal model size.
    let mut cfg = tiny(3);
    cfg.codec = ModelCodec::QuantizedU8;
    let result = cfg.run();
    let comm = skiptrain::energy::comm::CommEnergyModel::paper_fit();
    let bytes = ModelCodec::QuantizedU8.message_bytes(cfg.energy.workload.model_params);
    let expected =
        (cfg.rounds * cfg.nodes * 6) as f64 * (comm.tx_energy_wh(bytes) + comm.rx_energy_wh(bytes));
    assert!(
        (result.total_comm_wh - expected).abs() < 1e-9,
        "measured {} vs expected {expected}",
        result.total_comm_wh
    );
}

#[test]
fn compressed_experiments_are_deterministic() {
    for codec in [ModelCodec::QuantizedU8, ModelCodec::TopK { k: 200 }] {
        let mut cfg = tiny(4);
        cfg.codec = codec;
        let a = cfg.run();
        let b = cfg.run();
        assert_eq!(
            a.final_test.mean_accuracy.to_bits(),
            b.final_test.mean_accuracy.to_bits(),
            "{codec:?} run not deterministic"
        );
        assert_eq!(a.total_comm_wh.to_bits(), b.total_comm_wh.to_bits());
    }
}

#[test]
fn error_feedback_closes_top_k_accuracy_gap_at_unchanged_comm_energy() {
    // Issue-4 acceptance criterion: at the ext_compression default kept
    // fraction (sim_params / 16), plain top-k measurably underperforms
    // DenseF32 on the hard non-IID synth workload (the consensus bias
    // this issue fixes); enabling per-link error feedback must close at
    // least half of that measured gap while charging bit-identical
    // communication energy (feedback is link-local state — zero extra
    // wire bytes).
    let base = tiny(2);
    let k = sim_params(&base) / 16;
    let data = base.data.build(base.nodes, base.seed);

    let mut dense_cfg = base.clone();
    dense_cfg.codec = ModelCodec::DenseF32;
    let dense = dense_cfg.run_on(&data);

    let mut plain_cfg = base.clone();
    plain_cfg.codec = ModelCodec::TopK { k };
    let plain = plain_cfg.run_on(&data);

    let mut feedback_cfg = plain_cfg.clone();
    feedback_cfg.feedback_beta = Some(1.0);
    let feedback = feedback_cfg.run_on(&data);

    let dense_acc = dense.final_test.mean_accuracy;
    let plain_acc = plain.final_test.mean_accuracy;
    let feedback_acc = feedback.final_test.mean_accuracy;
    let gap = dense_acc - plain_acc;
    assert!(
        gap > 0.05,
        "plain top-k must pay a measurable accuracy price for the test \
         to mean anything: dense {dense_acc} vs plain {plain_acc}"
    );
    assert!(
        feedback_acc >= dense_acc - gap / 2.0,
        "error feedback must close >= half the top-k gap: \
         dense {dense_acc}, plain {plain_acc}, feedback {feedback_acc}"
    );
    assert_eq!(
        plain.total_comm_wh.to_bits(),
        feedback.total_comm_wh.to_bits(),
        "feedback must not change communication energy"
    );
    assert!(
        (feedback.total_training_wh - plain.total_training_wh).abs() < 1e-9,
        "feedback must not touch training energy"
    );
}

#[test]
fn feedback_runs_are_deterministic_across_thread_pools() {
    // The feedback path parallelizes over receivers with per-link state;
    // results must be independent of the worker count.
    let mut cfg = tiny(4);
    cfg.codec = ModelCodec::TopK {
        k: sim_params(&cfg) / 16,
    };
    cfg.feedback_beta = Some(1.0);
    let data = cfg.data.build(cfg.nodes, cfg.seed);
    let run_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| cfg.run_on(&data))
    };
    let reference = run_with(1);
    for threads in [2usize, 7] {
        let result = run_with(threads);
        assert_eq!(
            reference.final_test.mean_accuracy.to_bits(),
            result.final_test.mean_accuracy.to_bits(),
            "{threads}-thread accuracy diverged"
        );
        assert_eq!(
            reference.final_mean_model, result.final_mean_model,
            "{threads}-thread mean model diverged"
        );
        assert_eq!(
            reference.total_comm_wh.to_bits(),
            result.total_comm_wh.to_bits()
        );
    }
}

#[test]
fn builder_feedback_knob_runs_end_to_end() {
    let result = Experiment::builder()
        .name("compressed+ef")
        .nodes(8)
        .rounds(6)
        .compression(ModelCodec::TopK { k: 64 })
        .compression_feedback(1.0)
        .build()
        .expect("valid feedback config")
        .run();
    assert_eq!(result.rounds, 6);
    assert!(result.total_comm_wh > 0.0);
    assert!(result.final_mean_model.iter().all(|v| v.is_finite()));
}

#[test]
fn builder_compression_knob_runs_end_to_end() {
    let result = Experiment::builder()
        .name("compressed")
        .nodes(8)
        .rounds(6)
        .compression(ModelCodec::QuantizedU16)
        .build()
        .expect("valid compressed config")
        .run();
    assert_eq!(result.rounds, 6);
    assert!(result.total_comm_wh > 0.0);
}
