//! Cross-crate compression scenarios: codec choice must trade communication
//! energy against accuracy monotonically, without touching the training
//! energy axis, and the lossless codec must reproduce the uncompressed
//! baseline bit-for-bit.

use skiptrain::prelude::*;

fn tiny(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 12;
    cfg.rounds = 24;
    cfg.eval_every = 24;
    cfg.eval_max_samples = 200;
    cfg
}

fn sim_params(cfg: &ExperimentConfig) -> usize {
    cfg.model_kind().build(0).param_count()
}

#[test]
fn dense_codec_is_a_bitwise_noop() {
    let base = tiny(1);
    let mut explicit = base.clone();
    explicit.codec = ModelCodec::DenseF32;
    let a = base.run();
    let b = explicit.run();
    assert_eq!(
        a.final_test.mean_accuracy.to_bits(),
        b.final_test.mean_accuracy.to_bits()
    );
    assert_eq!(a.total_comm_wh.to_bits(), b.total_comm_wh.to_bits());
    assert_eq!(a.final_mean_model, b.final_mean_model);
}

#[test]
fn frontier_comm_energy_drops_monotonically_with_bounded_accuracy_loss() {
    let base = tiny(2);
    // top-k costs 8 bytes per kept parameter (charged at the same kept
    // fraction of the nominal model), so only fractions below 1/8 undercut
    // 8-bit quantization on the wire
    let k = sim_params(&base) / 16;
    let codecs = [
        ModelCodec::DenseF32,
        ModelCodec::QuantizedU16,
        ModelCodec::QuantizedU8,
        ModelCodec::TopK { k },
    ];
    let data = base.data.build(base.nodes, base.seed);
    let results: Vec<ExperimentResult> = codecs
        .iter()
        .map(|&codec| {
            let mut cfg = base.clone();
            cfg.codec = codec;
            cfg.run_on(&data)
        })
        .collect();

    let dense_acc = results[0].final_test.mean_accuracy;
    for w in results.windows(2) {
        assert!(
            w[1].total_comm_wh < w[0].total_comm_wh,
            "comm energy must drop: {} -> {}",
            w[0].total_comm_wh,
            w[1].total_comm_wh
        );
    }
    for (codec, r) in codecs.iter().zip(&results).skip(1) {
        // Quantization error is tiny → near-dense accuracy. Aggressive
        // top-k (6% kept, no error feedback) pays a real consensus price
        // on this hard non-IID task, but must still clearly beat 10-class
        // chance (0.1).
        let floor = match codec {
            ModelCodec::TopK { .. } => 0.15,
            _ => dense_acc - 0.1,
        };
        assert!(
            r.final_test.mean_accuracy > floor,
            "{codec:?}: accuracy loss too large ({} vs dense {dense_acc})",
            r.final_test.mean_accuracy
        );
        assert!(
            (r.total_training_wh - results[0].total_training_wh).abs() < 1e-9,
            "compression must not touch training energy"
        );
    }
}

#[test]
fn quantized_comm_energy_matches_codec_bytes_analytically() {
    // 6-regular static topology: comm Wh = rounds · n · 6 · (tx + rx) at
    // the codec's per-message bytes for the nominal model size.
    let mut cfg = tiny(3);
    cfg.codec = ModelCodec::QuantizedU8;
    let result = cfg.run();
    let comm = skiptrain::energy::comm::CommEnergyModel::paper_fit();
    let bytes = ModelCodec::QuantizedU8.message_bytes(cfg.energy.workload.model_params);
    let expected =
        (cfg.rounds * cfg.nodes * 6) as f64 * (comm.tx_energy_wh(bytes) + comm.rx_energy_wh(bytes));
    assert!(
        (result.total_comm_wh - expected).abs() < 1e-9,
        "measured {} vs expected {expected}",
        result.total_comm_wh
    );
}

#[test]
fn compressed_experiments_are_deterministic() {
    for codec in [ModelCodec::QuantizedU8, ModelCodec::TopK { k: 200 }] {
        let mut cfg = tiny(4);
        cfg.codec = codec;
        let a = cfg.run();
        let b = cfg.run();
        assert_eq!(
            a.final_test.mean_accuracy.to_bits(),
            b.final_test.mean_accuracy.to_bits(),
            "{codec:?} run not deterministic"
        );
        assert_eq!(a.total_comm_wh.to_bits(), b.total_comm_wh.to_bits());
    }
}

#[test]
fn builder_compression_knob_runs_end_to_end() {
    let result = Experiment::builder()
        .name("compressed")
        .nodes(8)
        .rounds(6)
        .compression(ModelCodec::QuantizedU16)
        .build()
        .expect("valid compressed config")
        .run();
    assert_eq!(result.rounds, 6);
    assert!(result.total_comm_wh > 0.0);
}
