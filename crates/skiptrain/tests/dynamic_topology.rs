//! Cross-crate time-varying-topology scenarios: scheduled rounds must
//! keep the doubly stochastic mixing contract (mean-model preservation),
//! stay deterministic across thread pools, fail bad schedules as typed
//! campaign errors, and — the issue's acceptance criterion — hold the
//! error-feedback replica cap without losing convergence: a 200-round
//! edge-dropout run with a tight cap must land within 1% accuracy of the
//! uncapped baseline at bit-identical communication energy.

use skiptrain::prelude::*;
use skiptrain::topology::regular::random_regular;
use skiptrain::topology::{Graph, ScheduledTopology, TopologySchedule};

fn tiny(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 12;
    cfg.rounds = 24;
    cfg.eval_every = 24;
    cfg.eval_max_samples = 200;
    cfg
}

#[test]
fn scheduled_experiments_learn_and_charge_fewer_effective_edges() {
    let base = tiny(1);
    let data = base.data.build(base.nodes, base.seed);
    let static_run = base.run_on(&data);

    let mut dropped = base.clone();
    dropped.topology_schedule = TopologyScheduleSpec::EdgeDropout { p: 0.5 };
    let dropped_run = dropped.run_on(&data);

    assert!(
        dropped_run.final_test.mean_accuracy > 0.25,
        "edge-dropout run failed to learn: {}",
        dropped_run.final_test.mean_accuracy
    );
    // the engine charges per effective edge, so dropping half the edges
    // halves comm energy (up to the random per-round census)
    let ratio = dropped_run.total_comm_wh / static_run.total_comm_wh;
    assert!(
        (0.35..0.65).contains(&ratio),
        "50% dropout should charge about half the comm energy, got {ratio}"
    );
    assert!(
        (dropped_run.total_training_wh - static_run.total_training_wh).abs() < 1e-9,
        "the topology schedule must not touch training energy"
    );
}

#[test]
fn cycling_schedule_preserves_the_mean_model_during_sync_rounds() {
    // Doubly stochastic mixing per scheduled round ⇒ pure gossip rounds
    // keep the network-average model fixed while cycling the graph.
    let base = tiny(2);
    let n = base.nodes;
    let cycle = vec![
        random_regular(n, 4, 9),
        Graph::ring(n),
        random_regular(n, 6, 10),
    ];
    let data = base.data.build(n, base.seed);
    let mut sched = ScheduledTopology::new(
        TopologySpec::Regular { degree: 6 }.build(n, 77),
        TopologySchedule::Cycle(cycle),
    );

    let kind = base.model_kind();
    let models: Vec<_> = (0..n).map(|i| kind.build(100 + i as u64)).collect();
    let graph = TopologySpec::Regular { degree: 6 }.build(n, 77);
    let mixing = skiptrain::topology::MixingMatrix::metropolis_hastings(&graph);
    let mut sim = Simulation::with_shared_data(
        models,
        data.node_datasets.clone(),
        graph,
        mixing,
        SimulationConfig::minimal(5, base.batch_size, base.local_steps, base.learning_rate),
    );
    // diversify node models with a few static training rounds first
    for _ in 0..3 {
        sim.run_round(&vec![RoundAction::Train; n]);
    }

    let mean_before = sim.mean_params();
    let d_before = sim.disagreement();
    for r in 0..12 {
        let mixing = sched.mixing_for_round(r);
        sim.try_run_round_with_mixing(&vec![RoundAction::SyncOnly; n], mixing)
            .expect("cycle graphs match the fleet");
    }
    let mean_after = sim.mean_params();
    let drift: f32 = mean_before
        .iter()
        .zip(&mean_after)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    assert!(
        drift < 1e-4,
        "cycling sync rounds drifted the mean model by {drift}"
    );
    assert!(
        sim.disagreement() < d_before * 0.5,
        "cycling gossip must still contract disagreement: {d_before} -> {}",
        sim.disagreement()
    );
}

#[test]
fn dynamic_feedback_runs_are_deterministic_across_thread_pools() {
    // Scheduled graphs + capped per-link feedback parallelize over
    // receivers; results must be independent of the worker count.
    let mut cfg = tiny(4);
    cfg.topology_schedule = TopologyScheduleSpec::EdgeDropout { p: 0.4 };
    cfg.codec = ModelCodec::TopK { k: 64 };
    cfg.feedback_beta = Some(1.0);
    cfg.feedback_replica_cap = Some(3);
    let data = cfg.data.build(cfg.nodes, cfg.seed);
    let run_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| cfg.run_on(&data))
    };
    let reference = run_with(1);
    for threads in [2usize, 7] {
        let result = run_with(threads);
        assert_eq!(
            reference.final_test.mean_accuracy.to_bits(),
            result.final_test.mean_accuracy.to_bits(),
            "{threads}-thread accuracy diverged"
        );
        assert_eq!(
            reference.final_mean_model, result.final_mean_model,
            "{threads}-thread mean model diverged"
        );
        assert_eq!(
            reference.total_comm_wh.to_bits(),
            result.total_comm_wh.to_bits()
        );
    }
}

#[test]
fn capped_replicas_converge_within_one_percent_of_uncapped_at_identical_comm_energy() {
    // Issue-5 acceptance criterion: 200 scheduled edge-dropout rounds
    // with error feedback under a tight replica cap (4 per receiver on
    // the 6-in-degree base, so staleness eviction genuinely churns) must
    // cost at most 1% test accuracy versus the uncapped baseline, while
    // the communication energy — which the cap cannot touch — stays
    // bit-identical. (Measured, the cap *gains* accuracy here: the
    // uncapped state is exactly the stale-replica pathology this issue
    // fixes — a long-dormant link compresses its residual against an
    // arbitrarily old replica and then aggregates that bad estimate,
    // while staleness-first eviction restarts such links cold from the
    // receiver's current model. The second assertion pins that gain.)
    let mut base = tiny(6);
    base.rounds = 200;
    base.eval_every = 10;
    // the 1% criterion needs a low-variance readout: evaluate the full
    // test split instead of the 200-sample smoke cap
    base.eval_max_samples = usize::MAX;
    base.topology_schedule = TopologyScheduleSpec::EdgeDropout { p: 0.4 };
    base.codec = ModelCodec::TopK { k: 64 };
    base.feedback_beta = Some(1.0);
    let data = base.data.build(base.nodes, base.seed);

    let mut capped = base.clone();
    capped.feedback_replica_cap = Some(4);
    let capped_run = capped.run_on(&data);

    let mut uncapped = base.clone();
    uncapped.feedback_replica_cap = Some(usize::MAX);
    let uncapped_run = uncapped.run_on(&data);

    // single-round accuracies oscillate at this learning rate; the
    // convergence criterion reads the plateau — the mean over the final
    // quarter of the curve (rounds 150..=200)
    let plateau = |r: &ExperimentResult| {
        let tail: Vec<f32> = r
            .test_curve
            .iter()
            .filter(|p| p.round > 150)
            .map(|p| p.mean_accuracy)
            .collect();
        assert!(tail.len() >= 5, "expected a populated curve tail");
        tail.iter().sum::<f32>() / tail.len() as f32
    };
    let capped_acc = plateau(&capped_run);
    let uncapped_acc = plateau(&uncapped_run);
    // (Measured at this pin the capped run actually *gains* ~6pp — a
    // cold restart from the receiver's current model beats compressing
    // against a stale estimate — but only the acceptance bound is
    // asserted; the gain is an empirical note, not a contract.)
    assert!(
        capped_acc >= uncapped_acc - 0.01,
        "the replica cap may cost at most 1% accuracy: \
         capped {capped_acc}, uncapped {uncapped_acc}"
    );
    assert_eq!(
        capped_run.total_comm_wh.to_bits(),
        uncapped_run.total_comm_wh.to_bits(),
        "the replica cap must not change what travels on the wire"
    );
    assert!(
        capped_run.final_test.mean_accuracy > 0.25,
        "the capped run must still genuinely learn: {}",
        capped_run.final_test.mean_accuracy
    );
}

#[test]
fn bad_scheduled_graph_fails_the_campaign_cell_not_the_process() {
    let good = tiny(8);
    let mut bad = tiny(9);
    bad.name = "bad-cycle".into();
    bad.topology_schedule = TopologyScheduleSpec::Cycle(vec![Graph::ring(8)]); // 12-node fleet
    let err = Campaign::new()
        .push(good)
        .push(bad)
        .run()
        .expect_err("mis-sized cycle graph must be rejected");
    assert_eq!(err.run, 1);
    assert_eq!(err.name, "bad-cycle");
    assert_eq!(
        err.source,
        ConfigError::TopologyCycleSizeMismatch {
            index: 0,
            expected: 12,
            got: 8
        }
    );
}

#[test]
fn pairwise_matching_schedule_matches_async_gossip_energy_shape() {
    // A matching schedule fires at most n/2 pairs per round, so its comm
    // energy is bounded by a 1/degree fraction of the static run's.
    let base = tiny(10);
    let data = base.data.build(base.nodes, base.seed);
    let static_run = base.run_on(&data);
    let mut matched = base.clone();
    matched.topology_schedule = TopologyScheduleSpec::PairwiseMatching;
    let matched_run = matched.run_on(&data);
    assert!(matched_run.total_comm_wh > 0.0);
    assert!(
        matched_run.total_comm_wh <= static_run.total_comm_wh / 6.0 + 1e-12,
        "matching comm {} exceeds the 1/6 static bound {}",
        matched_run.total_comm_wh,
        static_run.total_comm_wh / 6.0
    );
}
