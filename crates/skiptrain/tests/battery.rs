//! Closed-loop battery subsystem, end to end: harvest-driven participation
//! gating through the full experiment pipeline.
//!
//! The headline test pins the subsystem's reason to exist: on a diurnal
//! harvest trace too weak to sustain always-on training, a charge-aware
//! policy (threshold or hysteresis) banks harvest into completed training
//! rounds while the always-on baseline browns out every round — so the
//! policy reaches strictly higher accuracy per harvested watt-hour at
//! bit-identical harvest accounting.

use skiptrain::energy::device::fleet;
use skiptrain::energy::trace::round_duration_s;
use skiptrain::prelude::*;

fn base_config(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 12;
    cfg.rounds = 48;
    cfg.eval_every = 16;
    cfg.eval_max_samples = 200;
    cfg
}

/// The fleet's per-round training-energy extremes and lockstep round
/// duration — the numbers `BatterySpec::build` sizes the harvest against.
fn fleet_round_numbers(cfg: &ExperimentConfig) -> (f64, f64, f64) {
    let costs = cfg.energy.node_energies(cfg.nodes);
    let min_cost = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let max_cost = costs.into_iter().fold(0.0f64, f64::max);
    let round_s = fleet(cfg.nodes)
        .iter()
        .map(|d| round_duration_s(&d.profile(), &cfg.energy.workload))
        .fold(0.0f64, f64::max);
    (min_cost, max_cost, round_s)
}

/// A diurnal harvest whose *peak* per-round energy stays below the
/// cheapest node's training round (so nobody can train off a single
/// round's harvest, even at midday) while still delivering enough energy
/// per period to bank a round — strong enough to save, far too weak to
/// train every round.
fn trickle_diurnal(cfg: &ExperimentConfig, period_rounds: f64) -> HarvestProfile {
    let (min_cost, _, round_s) = fleet_round_numbers(cfg);
    let peak_round_wh = 0.9 * min_cost;
    HarvestProfile::Diurnal {
        peak_watts: peak_round_wh * 3600.0 / round_s,
        period_rounds,
    }
}

fn starved_spec(cfg: &ExperimentConfig, policy: BatteryPolicy) -> BatterySpec {
    let (_, max_cost, _) = fleet_round_numbers(cfg);
    BatterySpec {
        // sized so 60 % charge affords even the most expensive node's
        // round (policies below gate at 0.6)
        capacity: BatteryCapacitySpec::Uniform { wh: 2.0 * max_cost },
        initial_fraction: 0.0, // every watt-hour must be harvested
        harvest: trickle_diurnal(cfg, 16.0),
        harvest_jitter: 0.25,
        policy,
        node_policies: None,
    }
}

#[test]
fn charge_aware_policies_beat_always_on_per_harvested_wh() {
    let cfg = base_config(21);
    let data = cfg.data.build(cfg.nodes, cfg.seed);

    let run = |policy: BatteryPolicy| {
        let mut c = cfg.clone();
        c.battery = Some(starved_spec(&cfg, policy));
        c.run_on(&data)
    };

    // Gating at 0.6 of a 2·max-cost capacity banks 1.2× the most
    // expensive node's round, so a resumed node always affords training.
    let always = run(BatteryPolicy::AlwaysOn);
    let threshold = run(BatteryPolicy::Threshold { min_fraction: 0.6 });
    let hysteresis = run(BatteryPolicy::Hysteresis {
        suspend_fraction: 0.2,
        resume_fraction: 0.6,
    });

    // Always-on cannot bank: each round it holds a sliver of harvest,
    // intends to train, cannot afford the round, and burns the sliver.
    let ab = always.battery.as_ref().expect("battery summary recorded");
    assert_eq!(
        always.total_training_wh, 0.0,
        "always-on must never complete a training round on this trickle"
    );
    assert!(
        ab.brownouts > 0,
        "always-on must brown out on an unaffordable trickle"
    );

    for (name, gated) in [("threshold", &threshold), ("hysteresis", &hysteresis)] {
        let gb = gated.battery.as_ref().expect("battery summary recorded");
        // identical trace, identical rounds: the harvest denominator must
        // be bit-identical — the comparison divides by the same energy
        assert_eq!(
            ab.harvested_wh.to_bits(),
            gb.harvested_wh.to_bits(),
            "{name}: harvest accounting diverged from always-on"
        );
        assert!(
            gated.total_training_wh > 0.0,
            "{name}: banking harvest must buy completed training rounds"
        );
        let always_per_wh = always.final_test.mean_accuracy as f64 / ab.harvested_wh;
        let gated_per_wh = gated.final_test.mean_accuracy as f64 / gb.harvested_wh;
        assert!(
            gated_per_wh > always_per_wh,
            "{name}: {gated_per_wh} acc/Wh must strictly beat always-on {always_per_wh}"
        );
        assert!(
            gated.final_test.mean_accuracy > always.final_test.mean_accuracy,
            "{name}: gated accuracy {} must beat always-on {}",
            gated.final_test.mean_accuracy,
            always.final_test.mean_accuracy
        );
    }
}

#[test]
fn battery_runs_are_deterministic_across_thread_counts() {
    let run_with_threads = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut cfg = base_config(22);
            cfg.rounds = 24;
            cfg.battery = Some(starved_spec(
                &cfg,
                BatteryPolicy::Hysteresis {
                    suspend_fraction: 0.1,
                    resume_fraction: 0.3,
                },
            ));
            cfg.run()
        })
    };
    let one = run_with_threads(1);
    let two = run_with_threads(2);
    let seven = run_with_threads(7);
    for (label, other) in [("2 threads", &two), ("7 threads", &seven)] {
        assert_eq!(
            one.final_test.mean_accuracy.to_bits(),
            other.final_test.mean_accuracy.to_bits(),
            "{label} changed the result"
        );
        let a = one.battery.as_ref().unwrap();
        let b = other.battery.as_ref().unwrap();
        assert_eq!(
            a.harvested_wh.to_bits(),
            b.harvested_wh.to_bits(),
            "{label}"
        );
        assert_eq!(a.drained_wh.to_bits(), b.drained_wh.to_bits(), "{label}");
        assert_eq!(a.node_participations, b.node_participations, "{label}");
        assert_eq!(a.brownouts, b.brownouts, "{label}");
    }
}

#[test]
fn fully_gated_runs_charge_zero_energy() {
    // Pinned regression: nodes below threshold neither train nor fire
    // edges, so a fleet that starts empty with no harvest must account
    // exactly zero energy — comm included — across the whole run.
    let mut cfg = base_config(23);
    cfg.rounds = 12;
    cfg.battery = Some(BatterySpec {
        capacity: BatteryCapacitySpec::Uniform { wh: 1.0 },
        initial_fraction: 0.0,
        harvest: HarvestProfile::None,
        harvest_jitter: 0.0,
        policy: BatteryPolicy::Threshold { min_fraction: 0.2 },
        node_policies: None,
    });
    let result = cfg.run();
    assert_eq!(result.total_training_wh, 0.0);
    assert_eq!(
        result.total_comm_wh, 0.0,
        "gated nodes must not be charged comm energy"
    );
    let summary = result.battery.expect("battery summary recorded");
    assert_eq!(summary.node_participations, 0);
    assert_eq!(summary.harvested_wh, 0.0);
    assert_eq!(summary.drained_wh, 0.0);
}

#[test]
fn battery_free_runs_report_no_summary_and_async_gossip_composes() {
    let mut cfg = base_config(24);
    cfg.rounds = 8;
    cfg.eval_every = 8;
    let data = cfg.data.build(cfg.nodes, cfg.seed);
    let plain = cfg.run_on(&data);
    assert!(plain.battery.is_none(), "no battery configured, no summary");

    // the async-gossip path shares the battery prologue: gating applies
    // to pairwise ticks exactly as to synchronous rounds
    let mut gated = cfg.clone();
    gated.battery = Some(BatterySpec {
        capacity: BatteryCapacitySpec::Uniform { wh: 1.0 },
        initial_fraction: 0.0,
        harvest: HarvestProfile::None,
        harvest_jitter: 0.0,
        policy: BatteryPolicy::Threshold { min_fraction: 0.2 },
        node_policies: None,
    });
    let result = skiptrain::algorithms::asyncgossip::run_async_gossip(&gated, &data, 0.5);
    assert_eq!(result.total_comm_wh, 0.0, "dead nodes cannot gossip");
    assert_eq!(result.total_training_wh, 0.0);
    let summary = result.battery.expect("async path records the summary");
    assert_eq!(summary.node_participations, 0);
}

#[test]
fn conservation_holds_through_the_full_pipeline() {
    // charge = initial + harvested − wasted − drained, summed over nodes
    let mut cfg = base_config(25);
    cfg.rounds = 24;
    cfg.battery = Some(starved_spec(
        &cfg,
        BatteryPolicy::Threshold { min_fraction: 0.3 },
    ));
    let result = cfg.run();
    let s = result.battery.expect("battery summary recorded");
    // initial_fraction = 0 ⇒ initial charge 0
    let reconstructed = s.harvested_wh - s.wasted_wh - s.drained_wh;
    assert!(
        (s.final_charge_wh - reconstructed).abs() < 1e-9,
        "conservation violated: final {} vs reconstructed {}",
        s.final_charge_wh,
        reconstructed
    );
    assert!(s.final_charge_wh >= 0.0);
}
