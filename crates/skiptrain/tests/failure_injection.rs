//! Failure-injection and edge-case behavior across crate boundaries.

use skiptrain::prelude::*;
use skiptrain_data::synth::{MixtureSpec, MixtureTask};

#[test]
fn single_node_degenerates_to_local_sgd() {
    // A 1-node "network" with an identity mixing matrix: the engine must
    // run plain local SGD without panicking.
    let task = MixtureTask::new(
        MixtureSpec {
            num_classes: 3,
            feature_dim: 6,
            modes_per_class: 1,
            separation: 2.0,
            noise: 0.4,
        },
        1,
    );
    let data = task.sample(80, 1);
    let test = task.sample(100, 2);
    let model = ModelKind::Mlp {
        dims: vec![6, 8, 3],
    }
    .build(5);
    let mut sim = Simulation::new(
        vec![model],
        vec![data],
        Graph::empty(1),
        MixingMatrix::identity(1),
        SimulationConfig::minimal(1, 8, 4, 0.2),
    );
    for _ in 0..20 {
        sim.run_round(&[RoundAction::Train]);
    }
    let stats = sim.evaluate(&test, usize::MAX);
    assert!(
        stats.mean_accuracy > 0.8,
        "lone node failed to learn: {}",
        stats.mean_accuracy
    );
}

#[test]
fn zero_budget_fleet_never_trains() {
    let mut cfg = cifar_config(Scale::Quick, 3);
    cfg.nodes = 8;
    cfg.rounds = 12;
    cfg.eval_every = 12;
    cfg.eval_max_samples = 100;
    // battery fraction so tiny every budget floors to zero
    cfg.energy = EnergySpec {
        workload: WorkloadSpec::cifar10(),
        battery_fraction: Some(1e-9),
        comm_joules_per_byte: None,
    };
    cfg.algorithm = AlgorithmSpec::Greedy;
    let result = cfg.run();
    assert_eq!(
        result.node_train_events, 0,
        "zero-budget nodes must never train"
    );
    assert_eq!(result.total_training_wh, 0.0);
    // models still mix (sync every round) — accuracy stays at init level
    assert!(result.final_test.mean_accuracy < 0.3);
}

#[test]
fn exhausted_constrained_run_becomes_sync_only() {
    let mut cfg = cifar_config(Scale::Quick, 4);
    cfg.nodes = 8;
    cfg.rounds = 40;
    cfg.eval_every = 40;
    cfg.eval_max_samples = 100;
    // budgets so small they exhaust in the first period
    cfg.energy = EnergySpec {
        workload: WorkloadSpec::cifar10(),
        battery_fraction: Some(0.0002), // τ ≈ 0–1 rounds per device
        comm_joules_per_byte: None,
    };
    cfg.algorithm = AlgorithmSpec::SkipTrainConstrained(Schedule::new(4, 4));
    let budgets = cfg.energy.node_budgets(cfg.nodes);
    let result = cfg.run();
    let cap: u64 = budgets.iter().map(|&b| b as u64).sum();
    assert!(result.node_train_events <= cap);
}

#[test]
fn disconnected_topology_blocks_global_consensus() {
    // Two disjoint rings: information cannot cross components, so node
    // accuracy stays bimodal (high std) even after many sync rounds.
    let task = MixtureTask::new(
        MixtureSpec {
            num_classes: 4,
            feature_dim: 8,
            modes_per_class: 1,
            separation: 1.5,
            noise: 0.5,
        },
        9,
    );
    let n = 8;
    let mut graph = Graph::empty(n);
    for c in 0..2 {
        let base = c * 4;
        for i in 0..4 {
            let a = (base + i) as u32;
            let b = (base + (i + 1) % 4) as u32;
            if !graph.has_edge(a as usize, b as usize) {
                graph.add_edge(a, b);
            }
        }
    }
    assert!(!graph.is_connected());
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    // give component 0 only classes {0,1} and component 1 only {2,3}
    let full = task.sample(800, 1);
    let mut datasets = Vec::new();
    for i in 0..n {
        let wanted: Vec<usize> = (0..full.len())
            .filter(|&s| {
                let l = full.labels()[s] as usize;
                if i < 4 {
                    l < 2
                } else {
                    l >= 2
                }
            })
            .take(60)
            .collect();
        datasets.push(full.subset(&wanted));
    }
    let models: Vec<Sequential> = (0..n)
        .map(|i| {
            ModelKind::Mlp {
                dims: vec![8, 8, 4],
            }
            .build(50 + i as u64)
        })
        .collect();
    let mut sim = Simulation::new(
        models,
        datasets,
        graph,
        mixing,
        SimulationConfig::minimal(9, 8, 4, 0.2),
    );
    let test = task.sample(400, 2);
    for _ in 0..15 {
        sim.run_round(&vec![RoundAction::Train; n]);
    }
    for _ in 0..10 {
        sim.run_round(&vec![RoundAction::SyncOnly; n]);
    }
    let stats = sim.evaluate(&test, usize::MAX);
    // each component only ever saw half the classes → ≈50% ceiling
    assert!(
        stats.mean_accuracy < 0.75,
        "disconnected components cannot exceed their class ceiling: {}",
        stats.mean_accuracy
    );
    assert!(
        sim.disagreement() > 1e-6,
        "components should not reach global consensus"
    );
}

#[test]
fn corrupted_frame_is_rejected() {
    use skiptrain::engine::transport::{decode_model, encode_model, DecodeError};
    let frame = encode_model(3, 9, &[0.5, -1.5, 2.0]);
    let mut raw = frame.to_vec();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x40;
    let result = decode_model(bytes::Bytes::from(raw));
    assert!(
        matches!(
            result,
            Err(DecodeError::BadChecksum) | Err(DecodeError::LengthMismatch)
        ),
        "corruption slipped through: {result:?}"
    );
}
