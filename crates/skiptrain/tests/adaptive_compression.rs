//! Cross-crate scenarios for the per-link compression policy layer: the
//! `Uniform` policy must be bit-identical to the legacy global-codec path
//! at any worker count, per-link charged bytes must reconcile exactly with
//! the energy ledger under heterogeneous codecs, legacy experiment JSON
//! (no `compression` field) must keep running bit-identically, and the
//! DEAL-style energy-adaptive tier table must beat every fixed codec on
//! accuracy per harvested watt-hour on a diurnal battery fleet.

// The deprecated builder compression shims are exercised on purpose.
#![allow(deprecated)]

use skiptrain::prelude::*;

fn tiny(seed: u64) -> ExperimentConfig {
    let mut cfg = cifar_config(Scale::Quick, seed);
    cfg.nodes = 12;
    cfg.rounds = 16;
    cfg.eval_every = 16;
    cfg.eval_max_samples = 200;
    cfg
}

fn sim_params(cfg: &ExperimentConfig) -> usize {
    cfg.model_kind().build(0).param_count()
}

fn run_with_threads(cfg: &ExperimentConfig, data: &DataBundle, threads: usize) -> ExperimentResult {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(|| cfg.run_on(data))
}

fn assert_bitwise_equal(a: &ExperimentResult, b: &ExperimentResult, what: &str) {
    assert_eq!(
        a.final_test.mean_accuracy.to_bits(),
        b.final_test.mean_accuracy.to_bits(),
        "{what}: accuracy diverged"
    );
    assert_eq!(
        a.final_mean_model, b.final_mean_model,
        "{what}: mean model diverged"
    );
    assert_eq!(
        a.total_comm_wh.to_bits(),
        b.total_comm_wh.to_bits(),
        "{what}: comm energy diverged"
    );
    assert_eq!(
        a.total_training_wh.to_bits(),
        b.total_training_wh.to_bits(),
        "{what}: training energy diverged"
    );
    assert_eq!(
        a.total_wire_bytes, b.total_wire_bytes,
        "{what}: wire bytes diverged"
    );
}

/// The tentpole's backward-compatibility contract: a `CompressionSpec`
/// holding `Uniform(codec)` re-enters the exact legacy share/aggregate
/// code, so it must reproduce the legacy flat-`codec` run bit for bit —
/// on the dense, top-k, and error-feedback paths, at 1, 2, and 7 worker
/// threads.
#[test]
fn uniform_spec_is_bit_identical_to_legacy_codec_across_thread_pools() {
    let base = tiny(11);
    let k = sim_params(&base) / 16;
    let variants: [(&str, ModelCodec, Option<f32>); 3] = [
        ("dense", ModelCodec::DenseF32, None),
        ("top-k", ModelCodec::TopK { k }, None),
        ("top-k+ef", ModelCodec::TopK { k }, Some(1.0)),
    ];
    let data = base.data.build(base.nodes, base.seed);
    for (name, codec, beta) in variants {
        let mut legacy = base.clone();
        legacy.codec = codec;
        legacy.feedback_beta = beta;

        let mut spec = base.clone();
        spec.compression = Some(CompressionSpec {
            policy: CompressionPolicy::Uniform(codec),
            feedback_beta: beta,
            ..CompressionSpec::default()
        });

        let reference = run_with_threads(&legacy, &data, 1);
        for threads in [1usize, 2, 7] {
            let via_spec = run_with_threads(&spec, &data, threads);
            assert_bitwise_equal(
                &reference,
                &via_spec,
                &format!("{name} spec-vs-legacy at {threads} threads"),
            );
        }
    }
}

/// Adaptive policies take the per-link resolution path, which is still
/// receiver-parallel — results must not depend on the worker count.
#[test]
fn adaptive_policies_are_deterministic_across_thread_pools() {
    let mut base = tiny(12);
    base.topology_schedule = TopologyScheduleSpec::EdgeDropout { p: 0.3 };
    let floor_k = sim_params(&base) / 64;
    let policies = [
        CompressionPolicy::deal_tiers(floor_k),
        CompressionPolicy::RarityAdaptive {
            base_k: floor_k,
            max_k: sim_params(&base) / 8,
        },
    ];
    let data = base.data.build(base.nodes, base.seed);
    for policy in policies {
        let mut cfg = base.clone();
        cfg.compression = Some(CompressionSpec {
            policy: policy.clone(),
            ..CompressionSpec::default()
        });
        let reference = run_with_threads(&cfg, &data, 1);
        assert!(reference.final_mean_model.iter().all(|v| v.is_finite()));
        for threads in [2usize, 7] {
            let result = run_with_threads(&cfg, &data, threads);
            assert_bitwise_equal(
                &reference,
                &result,
                &format!("{} at {threads} threads", policy.name()),
            );
        }
    }
}

/// γ = 1 is the bit-exact legacy update; γ < 1 damps consensus — the
/// models move, stay finite, and the run stays deterministic.
#[test]
fn consensus_gamma_damps_mixing_without_breaking_determinism() {
    let base = tiny(13);
    let data = base.data.build(base.nodes, base.seed);
    let run_gamma = |gamma: f32| {
        let mut cfg = base.clone();
        cfg.compression = Some(CompressionSpec {
            gamma,
            ..CompressionSpec::default()
        });
        cfg.run_on(&data)
    };
    let plain = base.run_on(&data);
    let unit = run_gamma(1.0);
    assert_bitwise_equal(&plain, &unit, "gamma=1 vs legacy");

    let damped = run_gamma(0.5);
    let damped_again = run_gamma(0.5);
    assert_bitwise_equal(&damped, &damped_again, "gamma=0.5 reruns");
    assert!(damped.final_mean_model.iter().all(|v| v.is_finite()));
    assert_ne!(
        damped.final_mean_model, unit.final_mean_model,
        "gamma=0.5 must change the consensus trajectory"
    );
}

/// Satellite audit: under a heterogeneous `PerLink` table (mixed top-k
/// budgets, quantized default, one dense link) with a nominal model much
/// larger than the simulated one, the per-link charged bytes must sum to
/// exactly what the ledger recorded per node and in total.
#[test]
fn per_link_charged_bytes_reconcile_with_ledger() {
    use skiptrain::data::synth::{MixtureSpec, MixtureTask};

    const NODES: usize = 8;
    const ROUNDS: usize = 5;
    const NOMINAL: usize = 1_000_000;

    let graph = Graph::complete(NODES);
    let task = MixtureTask::new(
        MixtureSpec {
            num_classes: 10,
            feature_dim: 32,
            modes_per_class: 2,
            separation: 1.0,
            noise: 0.9,
        },
        5,
    );
    let datasets = (0..NODES).map(|i| task.sample(40, i as u64)).collect();
    let models: Vec<_> = (0..NODES)
        .map(|i| {
            ModelKind::Mlp {
                dims: vec![32, 24, 10],
            }
            .build(5 + i as u64)
        })
        .collect();
    let param_count = models[0].param_count();
    let mixing = MixingMatrix::metropolis_hastings(&graph);

    let links = vec![
        LinkCodec {
            src: 0,
            dst: 1,
            codec: ModelCodec::TopK { k: 7 },
        },
        LinkCodec {
            src: 1,
            dst: 0,
            codec: ModelCodec::TopK { k: 311 },
        },
        LinkCodec {
            src: 2,
            dst: 3,
            codec: ModelCodec::DenseF32,
        },
        LinkCodec {
            src: 3,
            dst: 2,
            codec: ModelCodec::QuantizedU16,
        },
        LinkCodec {
            src: 4,
            dst: 5,
            codec: ModelCodec::TopK { k: 63 },
        },
    ];
    let default = ModelCodec::QuantizedU8;
    let codec_for = |src: usize, dst: usize| {
        links
            .iter()
            .find(|l| l.src as usize == src && l.dst as usize == dst)
            .map(|l| l.codec)
            .unwrap_or(default)
    };

    let mut config = SimulationConfig::minimal(5, 16, 2, 0.5);
    config.compression = CompressionPolicy::PerLink {
        default,
        links: links.clone(),
    };
    config.nominal_params = Some(NOMINAL);
    let mut sim = Simulation::new(models, datasets, graph, mixing.clone(), config);
    let actions = vec![RoundAction::SyncOnly; NODES];
    for _ in 0..ROUNDS {
        sim.try_run_round(&actions).expect("static round runs");
    }

    // Reconstruct the expected ledger from the mixing structure and the
    // link table: every effective directed edge (j -> i) charges the
    // link's codec bytes once per round, tx at j and rx at i.
    let mut expected_tx = [0u64; NODES];
    let mut expected_rx = [0u64; NODES];
    for (i, rx_slot) in expected_rx.iter_mut().enumerate() {
        for &(j, _) in mixing.row(i) {
            let j = j as usize;
            if j == i {
                continue;
            }
            let bytes = codec_for(j, i).charged_message_bytes(param_count, NOMINAL);
            expected_tx[j] += bytes * ROUNDS as u64;
            *rx_slot += bytes * ROUNDS as u64;
        }
    }
    let ledger = sim.ledger();
    for node in 0..NODES {
        assert_eq!(
            ledger.node_tx_bytes(node),
            expected_tx[node],
            "node {node} tx bytes"
        );
        assert_eq!(
            ledger.node_rx_bytes(node),
            expected_rx[node],
            "node {node} rx bytes"
        );
    }
    assert_eq!(ledger.total_tx_bytes(), expected_tx.iter().sum::<u64>());
    assert_eq!(ledger.total_rx_bytes(), expected_rx.iter().sum::<u64>());
    // The top-k nominal scaling keeps the charged fraction: keeping 7 of
    // param_count simulated parameters charges like a top-k of
    // 7/param_count of the nominal model, and never rounds to zero.
    let k7 = ModelCodec::TopK { k: 7 }.charged_message_bytes(param_count, NOMINAL);
    let scaled_k = (7 * NOMINAL / param_count).max(1);
    assert_eq!(k7, ModelCodec::TopK { k: scaled_k }.message_bytes(NOMINAL));
    let k1 = ModelCodec::TopK { k: 1 }.charged_message_bytes(NOMINAL, 64);
    assert!(k1 >= ModelCodec::TopK { k: 1 }.message_bytes(64));
}

/// Legacy experiment JSON predates the `compression` field entirely; it
/// must deserialize (spec absent), resolve through the legacy flat
/// `codec`/`feedback_beta` fields, and run bit-identically to the
/// in-memory config it was serialized from.
#[test]
fn legacy_json_without_compression_field_runs_bit_identically() {
    let mut cfg = tiny(14);
    cfg.codec = ModelCodec::TopK {
        k: sim_params(&cfg) / 16,
    };
    cfg.feedback_beta = Some(1.0);

    let mut value = serde_json::to_value(&cfg);
    match &mut value {
        serde_json::Value::Object(entries) => {
            let before = entries.len();
            entries.retain(|(k, _)| k != "compression");
            assert_eq!(
                entries.len(),
                before - 1,
                "modern config JSON carries the compression field"
            );
        }
        other => panic!("config must serialize to an object, got {other:?}"),
    }
    let legacy: ExperimentConfig =
        serde_json::from_str(&serde_json::to_string(&value).expect("json renders"))
            .expect("pre-policy JSON must still load");
    assert!(legacy.compression.is_none());

    let effective = legacy.effective_compression();
    assert_eq!(effective.policy, CompressionPolicy::Uniform(cfg.codec));
    assert_eq!(effective.gamma, 1.0);
    assert_eq!(effective.feedback_beta, Some(1.0));

    let data = cfg.data.build(cfg.nodes, cfg.seed);
    let a = cfg.run_on(&data);
    let b = legacy.run_on(&data);
    assert_bitwise_equal(&a, &b, "legacy JSON vs modern config");
}

/// The deprecated builder shims must keep working and land on the same
/// spec (and therefore the same bits) as the first-class policy knob.
#[test]
fn deprecated_builder_shims_match_policy_knob_bitwise() {
    let codec = ModelCodec::QuantizedU16;
    let via_shim = Experiment::builder()
        .name("shim")
        .nodes(8)
        .rounds(6)
        .compression(codec)
        .build()
        .expect("valid shim config")
        .config()
        .clone();
    let via_policy = Experiment::builder()
        .name("shim")
        .nodes(8)
        .rounds(6)
        .compression_policy(CompressionPolicy::Uniform(codec))
        .build()
        .expect("valid policy config")
        .config()
        .clone();
    let data = via_shim.data.build(via_shim.nodes, via_shim.seed);
    assert_bitwise_equal(
        &via_shim.run_on(&data),
        &via_policy.run_on(&data),
        "shim vs policy knob",
    );
}

/// Invalid policy shapes must surface as typed `ConfigError`s at build
/// time, not panics inside the engine.
#[test]
fn invalid_compression_specs_are_rejected_with_typed_errors() {
    let build = |spec: CompressionSpec| {
        let mut cfg = tiny(15);
        cfg.compression = Some(spec);
        cfg.validate()
    };
    let err = build(CompressionSpec {
        gamma: 0.0,
        ..CompressionSpec::default()
    })
    .expect_err("gamma 0 is out of range");
    assert!(
        matches!(err, ConfigError::InvalidConsensusGamma { .. }),
        "{err:?}"
    );

    let err = build(CompressionSpec {
        policy: CompressionPolicy::RarityAdaptive {
            base_k: 9,
            max_k: 3,
        },
        ..CompressionSpec::default()
    })
    .expect_err("max_k below base_k");
    assert!(
        matches!(err, ConfigError::InvalidRarityBounds { .. }),
        "{err:?}"
    );

    let err = build(CompressionSpec {
        policy: CompressionPolicy::EnergyAdaptive { tiers: vec![] },
        ..CompressionSpec::default()
    })
    .expect_err("empty tier table");
    assert!(matches!(err, ConfigError::InvalidEnergyTiers), "{err:?}");

    let err = build(CompressionSpec {
        policy: CompressionPolicy::PerLink {
            default: ModelCodec::DenseF32,
            links: vec![LinkCodec {
                src: 2,
                dst: 99,
                codec: ModelCodec::DenseF32,
            }],
        },
        ..CompressionSpec::default()
    })
    .expect_err("dst outside the fleet");
    assert!(
        matches!(err, ConfigError::LinkCodecOutOfRange { .. }),
        "{err:?}"
    );
}

/// Pinned acceptance scenario: on a diurnal-harvest battery fleet under an
/// `EdgeDropout` schedule, with communication priced as a first-order
/// drain next to training, the DEAL tier table must strictly beat every
/// fixed global codec on accuracy per harvested watt-hour while putting
/// no more bytes on the wire than the best of them.
///
/// Built directly on the engine so the comm:train price ratio is a free
/// knob (the experiment runner pins the paper's radio fit, under which
/// training dwarfs communication and codec choice cannot move the
/// energy outcome). The regime: a u8-tier share phase costs ~8 training
/// rounds, the diurnal harvest replaces ~a third of a u8-tier round,
/// and the battery holds ~2 rounds of charge — so a fixed quantized
/// fleet is duty-cycled to ~35%, a fixed dense fleet starves, a fixed
/// sparse fleet runs flat-out but degrades every message, and the
/// adaptive fleet rides the tier table: full-rate u8 while charged, the
/// cheap top-k floor through the night, never missing a training round.
#[test]
fn energy_adaptive_beats_every_fixed_codec_per_harvested_wh() {
    use skiptrain::data::partition::partition_indices;
    use skiptrain::data::synth::{cifar_like, MixtureSpec};
    use skiptrain::energy::comm::CommEnergyModel;
    use skiptrain::topology::regular::circulant;
    use skiptrain::topology::{ScheduledTopology, TopologySchedule};

    const NODES: usize = 12;
    const DEGREE: usize = 4;
    const ROUNDS: usize = 64;
    const SEED: u64 = 41;
    const DROPOUT_P: f64 = 0.3;
    /// Mean per-node training drain per round, Wh.
    const TRAIN_WH: f64 = 0.5e-3;
    /// Per-node share-phase drain per round at the u8 tier, Wh (~8x the
    /// training drain: communication dominates, as for large models on
    /// radio-constrained devices).
    const COMM_U8_WH: f64 = 4.0e-3;
    /// Mean harvest per node per round, Wh (~a third of a u8-tier round,
    /// so the rich tier is affordable only part-time while the famine
    /// tier plus training always is).
    const HARVEST_WH: f64 = 1.5e-3;
    const ROUND_S: f64 = 60.0;

    let spec = MixtureSpec::cifar_like(32);
    let (train_pool, test_pool) = cifar_like(&spec, NODES * 80, 512, SEED);
    // The paper's 2-shard label skew: a fleet mixing only sparse
    // messages cannot reach consensus, and a node that misses a round
    // leaves its classes underrepresented in the mean model.
    let shards = partition_indices(
        &train_pool,
        NODES,
        &Partition::Shards { shards_per_node: 2 },
        SEED,
    );
    let datasets: Vec<Dataset> = shards.iter().map(|idx| train_pool.subset(idx)).collect();

    // A sparse ring-of-chords base graph: with only four neighbors, a
    // node that sits out a round genuinely fragments the gossip graph —
    // the scarcity that makes staying alive worth degraded messages.
    let graph = circulant(NODES, DEGREE);
    let mixing = MixingMatrix::metropolis_hastings(&graph);
    let model = ModelKind::Mlp {
        dims: vec![32, 24, 10],
    };
    let params = model.build(0).param_count();
    let u8_bytes = ModelCodec::QuantizedU8.message_bytes(params);
    // Expected effective directed degree under the dropout schedule; a
    // node pays tx per out-edge and rx per in-edge.
    let eff_degree = DEGREE as f64 * (1.0 - DROPOUT_P);
    let jpb = COMM_U8_WH * 3600.0 / (2.0 * eff_degree * u8_bytes as f64);
    let peak_watts = std::f64::consts::PI * HARVEST_WH * 3600.0 / ROUND_S;
    let capacity_wh = 2.0 * (TRAIN_WH + COMM_U8_WH);

    let famine_k = (params / 256).max(1);
    let fixed: Vec<(&str, ModelCodec)> = vec![
        ("dense", ModelCodec::DenseF32),
        ("u16", ModelCodec::QuantizedU16),
        ("u8", ModelCodec::QuantizedU8),
        ("top-k/16", ModelCodec::TopK { k: params / 16 }),
        ("top-k/64", ModelCodec::TopK { k: params / 64 }),
        ("top-k/256", ModelCodec::TopK { k: famine_k }),
    ];
    // The decremental tier table: full-rate quantization while the
    // battery is comfortable, the cheap top-k floor once it sags — the
    // famine tier costs less than the harvest replaces, so adaptive
    // nodes bank night-time charge into completed training rounds.
    let tiers = vec![
        EnergyTier {
            min_charge_fraction: 0.3,
            codec: ModelCodec::QuantizedU8,
        },
        EnergyTier {
            min_charge_fraction: 0.0,
            codec: ModelCodec::TopK { k: famine_k },
        },
    ];

    struct Outcome {
        accuracy: f32,
        wire_bytes: u64,
        metric: f64,
        brownouts: u64,
    }
    let run_policy = |policy: CompressionPolicy| -> Outcome {
        let models = (0..NODES)
            .map(|i| model.build(SEED + i as u64))
            .collect::<Vec<_>>();
        let mut config = SimulationConfig::minimal(SEED, 16, 2, 0.1);
        config.compression = policy;
        // CHOCO-SGD error feedback in every cell: receivers aggregate the
        // dense per-link replica, so a sparse famine-tier message refines
        // the last-delivered estimate instead of zero-filling 98% of the
        // model. The replicas are codec-agnostic — the adaptive cells
        // exercise feedback across mid-flight codec switches (the
        // refactor's core contract).
        config.feedback_beta = Some(1.0);
        config.training_energy_wh = (0..NODES)
            .map(|i| TRAIN_WH * (0.8 + 0.05 * (i % 8) as f64))
            .collect();
        config.comm_energy = CommEnergyModel {
            tx_joules_per_byte: jpb,
            rx_joules_per_byte: jpb,
        };
        config.battery = Some(BatterySetup {
            state: BatteryState::with_initial_fraction(vec![capacity_wh; NODES], 0.6),
            trace: HarvestTrace::new(
                HarvestProfile::Diurnal {
                    peak_watts,
                    period_rounds: 16.0,
                },
                ROUND_S,
                NODES,
                SEED,
                0.25,
            ),
            policy: BatteryPolicy::Threshold { min_fraction: 0.25 },
            node_policies: None,
        });
        let mut sim = Simulation::new(
            models,
            datasets.clone(),
            graph.clone(),
            mixing.clone(),
            config,
        );
        let mut sched = ScheduledTopology::new(
            graph.clone(),
            TopologySchedule::EdgeDropout {
                p: DROPOUT_P,
                seed: SEED,
            },
        );
        let actions = vec![RoundAction::Train; NODES];
        for _ in 0..ROUNDS {
            let round_mixing = sched.mixing_for_round(sim.round());
            sim.try_run_round_with_mixing(&actions, round_mixing)
                .expect("scheduled graph matches the fleet");
        }
        let accuracy = sim.evaluate(&test_pool, 512).mean_accuracy;
        let battery = sim.battery_state().expect("battery gating enabled");
        // Every cell shares the harvest trace, and `harvested` counts the
        // energy *offered* (pre-clip), so the denominator is policy-
        // independent: the metric ranks cells by the accuracy each one
        // bought from the same incident energy.
        let denom = battery.total_harvested_wh().max(battery.total_drained_wh());
        assert!(denom > 0.0, "harvest must flow for the metric to exist");
        Outcome {
            accuracy,
            wire_bytes: sim.ledger().total_tx_bytes(),
            metric: accuracy as f64 / denom,
            brownouts: sim.battery_brownouts().unwrap_or(0),
        }
    };

    let adaptive = run_policy(CompressionPolicy::EnergyAdaptive {
        tiers: tiers.clone(),
    });
    eprintln!(
        "adaptive: acc {:.4}  wire {:>9} B  brownouts {:>3}  metric {:.4}",
        adaptive.accuracy, adaptive.wire_bytes, adaptive.brownouts, adaptive.metric
    );
    let mut best_fixed_metric = f64::NEG_INFINITY;
    let mut best_fixed_bytes = 0u64;
    for (name, codec) in &fixed {
        let r = run_policy(CompressionPolicy::Uniform(*codec));
        eprintln!(
            "{name:>8}: acc {:.4}  wire {:>9} B  brownouts {:>3}  metric {:.4}",
            r.accuracy, r.wire_bytes, r.brownouts, r.metric
        );
        assert!(
            adaptive.metric > r.metric,
            "energy-adaptive ({:.4} acc/Wh, {} wire B) must strictly beat \
             fixed {name} ({:.4} acc/Wh, {} wire B)",
            adaptive.metric,
            adaptive.wire_bytes,
            r.metric,
            r.wire_bytes
        );
        if r.metric > best_fixed_metric {
            best_fixed_metric = r.metric;
            best_fixed_bytes = r.wire_bytes;
        }
    }
    assert!(
        adaptive.wire_bytes <= best_fixed_bytes,
        "energy-adaptive must not out-spend the best fixed codec on the wire: \
         {} B vs {} B",
        adaptive.wire_bytes,
        best_fixed_bytes
    );
}
