//! # SkipTrain — energy-aware decentralized learning
//!
//! A from-scratch Rust reproduction of *"Energy-Aware Decentralized Learning
//! with Intermittent Model Training"* (Dhasade et al., IPDPS 2024,
//! arXiv:2407.01283), including every substrate the paper depends on:
//! a decentralized-learning execution engine, a neural-network training
//! stack, synthetic non-IID datasets, communication topologies with
//! Metropolis–Hastings mixing, and smartphone energy traces.
//!
//! This facade crate re-exports the workspace so applications can depend on
//! a single crate:
//!
//! ```
//! use skiptrain::prelude::*;
//!
//! // Fluent, validated experiment construction; invalid configs are typed
//! // errors at build time, not mid-run panics.
//! let experiment = Experiment::builder()
//!     .name("demo")
//!     .nodes(16)
//!     .rounds(8)
//!     .algorithm(AlgorithmSpec::SkipTrain(Schedule::new(4, 4)))
//!     .build()
//!     .expect("valid config");
//! assert_eq!(experiment.config().algorithm.name(), "skiptrain");
//!
//! // Multi-run comparisons execute in parallel over shared data bundles.
//! let campaign = Campaign::new().push(experiment.into_config());
//! assert_eq!(campaign.len(), 1);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the per-figure reproduction harness.

/// Dense linear algebra kernels.
pub use skiptrain_linalg as linalg;

/// Neural networks with manual backprop (PyTorch substitute).
pub use skiptrain_nn as nn;

/// Synthetic datasets and non-IID partitioners.
pub use skiptrain_data as data;

/// Communication graphs and mixing matrices.
pub use skiptrain_topology as topology;

/// Device profiles, energy traces, ledgers and budgets.
pub use skiptrain_energy as energy;

/// The synchronous round execution engine (DecentralizePy substitute).
pub use skiptrain_engine as engine;

/// The SkipTrain algorithms, policies and experiment driver.
pub use skiptrain_core as algorithms;

/// The most common imports for building experiments.
pub mod prelude {
    #[allow(deprecated)]
    pub use skiptrain_core::experiment::{run_experiment, run_experiment_on};
    pub use skiptrain_core::experiment::{
        AlgorithmSpec, BatteryCapacitySpec, BatterySpec, BatterySummary, ChurnSpec,
        CompressionSpec, DataBundle, DataSpec, EnergySpec, EventSummary, ExperimentConfig,
        ExperimentResult, TimingSpec, TopologyScheduleSpec, TopologySpec,
    };
    pub use skiptrain_core::policy::{
        ConstrainedPolicy, DPsgdPolicy, GreedyPolicy, RoundPolicy, SkipTrainPolicy,
    };
    pub use skiptrain_core::presets::{
        cifar_config, femnist_config, tuned_schedule, with_algorithm, Scale,
    };
    pub use skiptrain_core::{
        Campaign, CampaignError, ConfigError, Experiment, ExperimentBuilder, Schedule,
    };
    pub use skiptrain_data::{Dataset, MinibatchSampler, Partition};
    pub use skiptrain_energy::{
        BatteryPolicy, BatterySetup, BatteryState, BudgetTracker, DeviceKind, EnergyLedger,
        HarvestProfile, HarvestTrace, WorkloadSpec,
    };
    pub use skiptrain_engine::observer::{
        BatteryObserver, BatteryRound, CurveObserver, EarlyStop, EnergyTraceObserver, EvalReport,
        MeanModelObserver, RoundCtx, RoundObserver, RoundReport,
    };
    pub use skiptrain_engine::{
        ChurnModel, CompressionPolicy, ComputeProfile, EnergyTier, EventEngine, EventStats,
        LatencyModel, LinkCodec, ModelCodec, RoundAction, RoundSemantics, Simulation,
        SimulationConfig, TransportKind, BASE_TRAIN_TICKS,
    };
    pub use skiptrain_nn::zoo::ModelKind;
    pub use skiptrain_nn::{Sequential, Sgd, SoftmaxCrossEntropy};
    pub use skiptrain_topology::{Graph, MixingMatrix};
}
