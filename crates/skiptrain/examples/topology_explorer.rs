//! Topology explorer: how graph structure drives gossip mixing speed and,
//! through it, SkipTrain's optimal Γ_sync (the §4.3 intuition).
//!
//! For each topology this example reports the spectral gap of the
//! Metropolis–Hastings matrix, the predicted number of gossip rounds to
//! shrink disagreement 10×, and the measured consensus error of an actual
//! parameter-mixing simulation.
//!
//! ```sh
//! cargo run --release --example topology_explorer
//! ```

use skiptrain::prelude::*;
use skiptrain_topology::erdos::gnp_connected;
use skiptrain_topology::regular::{circulant, random_regular};
use skiptrain_topology::spectral::{rounds_to_contract, second_eigenvalue};

fn consensus_error_after(mixing: &MixingMatrix, rounds: usize) -> f64 {
    // Scalar consensus: node i starts with value i; track max deviation
    // from the average after `rounds` gossip steps.
    let n = mixing.len();
    let mut x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mean = x.iter().sum::<f64>() / n as f64;
    for _ in 0..rounds {
        x = mixing.apply_scalar(&x);
    }
    x.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max)
}

fn main() {
    let n = 64usize;
    let seed = 11u64;

    let topologies: Vec<(String, Graph)> = vec![
        ("ring".into(), Graph::ring(n)),
        ("circulant d=6".into(), circulant(n, 6)),
        ("random 6-regular".into(), random_regular(n, 6, seed)),
        ("random 8-regular".into(), random_regular(n, 8, seed)),
        ("random 10-regular".into(), random_regular(n, 10, seed)),
        (
            "Erdős–Rényi p=0.15".into(),
            gnp_connected(n, 0.15, seed, 32).expect("connected sample"),
        ),
        ("complete".into(), Graph::complete(n)),
    ];

    println!(
        "{:<20} {:>6} {:>9} {:>12} {:>14} {:>16}",
        "topology", "edges", "diameter", "spectral gap", "rounds to 10x", "err @ 8 rounds"
    );
    for (name, graph) in topologies {
        let mixing = MixingMatrix::metropolis_hastings(&graph);
        let est = second_eigenvalue(&mixing, 600, seed);
        println!(
            "{:<20} {:>6} {:>9} {:>12.4} {:>14} {:>16.2e}",
            name,
            graph.edge_count(),
            graph
                .diameter()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            est.gap,
            rounds_to_contract(est.lambda2, 10.0),
            consensus_error_after(&mixing, 8),
        );
    }

    println!(
        "\nreading: a larger spectral gap means faster mixing, so denser topologies\n\
         need fewer synchronization rounds — the paper's Figure 3 finds Γ_sync = 4\n\
         optimal at degree 6 but only 2 at degree 10."
    );
}
