//! Quickstart: compare D-PSGD against SkipTrain on a small synthetic
//! CIFAR-10-like task and print accuracy and energy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use skiptrain::prelude::*;

fn main() {
    // A ready-made small configuration: 24 nodes, 2-shard non-IID data,
    // 6-regular topology, smartphone energy traces. The builder validates
    // the configuration up front — invalid setups fail here with a typed
    // error, not mid-run.
    let dpsgd = Experiment::builder()
        .name("quickstart/d-psgd")
        .build()
        .expect("valid config")
        .into_config();

    // SkipTrain replaces half the training rounds with synchronization
    // rounds (Γ_train = Γ_sync = 4, the paper's 6-regular optimum).
    let skiptrain = Experiment::builder()
        .name("quickstart/skiptrain")
        .algorithm(AlgorithmSpec::SkipTrain(Schedule::new(4, 4)))
        .build()
        .expect("valid config")
        .into_config();

    // Both runs share one materialized dataset and execute in parallel.
    println!(
        "running D-PSGD and SkipTrain in parallel ({} nodes, {} rounds)...",
        dpsgd.nodes, dpsgd.rounds
    );
    let results = Campaign::new()
        .push(dpsgd)
        .push(skiptrain)
        .run()
        .expect("valid campaign");
    let (dpsgd, skiptrain) = (&results[0], &results[1]);

    println!("\n             {:>12} {:>12}", "D-PSGD", "SkipTrain");
    println!(
        "accuracy     {:>11.1}% {:>11.1}%",
        dpsgd.final_test.mean_accuracy * 100.0,
        skiptrain.final_test.mean_accuracy * 100.0
    );
    println!(
        "train energy {:>10.2}Wh {:>10.2}Wh",
        dpsgd.total_training_wh, skiptrain.total_training_wh
    );
    println!(
        "train events {:>12} {:>12}",
        dpsgd.node_train_events, skiptrain.node_train_events
    );
    println!(
        "\nSkipTrain used {:.0}% of D-PSGD's training energy.",
        skiptrain.total_training_wh / dpsgd.total_training_wh * 100.0
    );
}
