//! UAV-swarm scenario (the paper's §1 motivation): a fleet of
//! battery-limited drones collaboratively learns a classifier while each
//! drone has a hard cap on how many training rounds it can afford.
//!
//! Unlike the quickstart, this example drives the engine directly with a
//! custom [`ConstrainedPolicy`] and hand-assigned budgets, showing the
//! lower-level API: per-drone batteries, the Eq. 5 training probabilities,
//! and per-node energy accounting.
//!
//! ```sh
//! cargo run --release --example uav_swarm_budget
//! ```

use skiptrain::prelude::*;
use skiptrain_data::synth::{MixtureSpec, MixtureTask};
use skiptrain_topology::regular::random_regular;

fn main() {
    let n = 16usize;
    let rounds = 80usize;
    let seed = 7u64;

    // Each drone observes the same sensing task but only a couple of the
    // ten target classes (e.g. it patrols one area) — 2-shard style skew.
    let task = MixtureTask::new(
        MixtureSpec {
            num_classes: 10,
            feature_dim: 24,
            modes_per_class: 2,
            separation: 1.0,
            noise: 0.8,
        },
        seed,
    );
    let pool = task.sample(n * 120, 1);
    let parts = skiptrain_data::partition::partition_indices(
        &pool,
        n,
        &Partition::Shards { shards_per_node: 2 },
        seed,
    );
    let datasets = skiptrain_data::partition::materialize(&pool, &parts);
    let test = task.sample(1500, 2);

    // Swarm communication: a sparse 4-regular mesh.
    let graph = random_regular(n, 4, seed);
    let mixing = MixingMatrix::metropolis_hastings(&graph);

    // Drone batteries: half the swarm is fresh (can train 40 of the 40
    // training opportunities), half is depleted to varying degrees.
    let schedule = Schedule::new(4, 4);
    let budgets: Vec<u32> = (0..n).map(|i| 10 + 2 * i as u32).collect();

    // Per-round training energy per drone: 1.8 Wh of avionics+compute.
    let models: Vec<Sequential> = (0..n)
        .map(|i| {
            ModelKind::Mlp {
                dims: vec![24, 32, 10],
            }
            .build(seed + i as u64)
        })
        .collect();
    let mut config = SimulationConfig::minimal(seed, 16, 8, 0.5);
    config.training_energy_wh = vec![1.8; n];
    let mut sim = Simulation::new(models, datasets, graph, mixing, config);

    let mut policy = ConstrainedPolicy::new(schedule, budgets.clone(), rounds, seed);
    println!(
        "drone training probabilities (Eq. 5, T_train = {}):",
        schedule.t_train(rounds)
    );
    for i in 0..n {
        print!("  p{i}={:.2}", policy.probability(i));
    }
    println!("\n");

    let mut actions = vec![RoundAction::SyncOnly; n];
    for t in 0..rounds {
        skiptrain::algorithms::RoundPolicy::decide(&mut policy, t, &mut actions);
        sim.run_round(&actions);
        if (t + 1) % 16 == 0 {
            let stats = sim.evaluate(&test, 600);
            println!(
                "round {:>3}: swarm accuracy {:.1}% (±{:.1})   energy {:>6.1} Wh   exhausted {:>4.0}%",
                t + 1,
                stats.mean_accuracy * 100.0,
                stats.std_accuracy * 100.0,
                sim.ledger().total_wh(),
                policy.budget().exhausted_fraction() * 100.0,
            );
        }
    }

    println!("\nper-drone budget usage:");
    for (i, budget) in budgets.iter().enumerate() {
        println!(
            "  drone {i:>2}: budget {:>2} rounds, used {:>2}, training energy {:>5.1} Wh",
            budget,
            policy.budget().consumed(i),
            sim.ledger().node_training_wh(i),
        );
    }
    let total_budget: u64 = budgets.iter().map(|&b| b as u64).sum();
    println!(
        "\nswarm consumed {} of {} budgeted training rounds; no drone exceeded its battery.",
        policy.budget().total_consumed(),
        total_budget
    );
}
