//! Lossy-network stress test: SkipTrain over a transport that serializes
//! every model exchange (checksummed frames) and drops messages with a
//! configurable probability. Dropped neighbors are renormalized into the
//! self-weight, so mixing stays doubly stochastic in expectation.
//!
//! All four drop rates run as one parallel campaign over a single shared
//! dataset.
//!
//! ```sh
//! cargo run --release --example lossy_network
//! ```

use skiptrain::prelude::*;

fn main() {
    let seed = 42u64;
    let mut base = cifar_config(Scale::Quick, seed);
    base.algorithm = AlgorithmSpec::SkipTrain(Schedule::new(4, 4));
    base.rounds = 64;

    let drop_probs = [0.0, 0.1, 0.25, 0.5];
    let mut campaign = Campaign::new();
    for drop_prob in drop_probs {
        let mut cfg = base.clone();
        cfg.name = format!("lossy-{drop_prob}");
        cfg.transport = TransportKind::Serialized {
            drop_prob,
            corrupt_prob: 0.0,
        };
        campaign = campaign.push(cfg);
    }

    println!(
        "SkipTrain over a serialized, lossy transport ({} nodes):\n",
        base.nodes
    );
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "drop rate", "accuracy", "std", "comm energy Wh"
    );
    let results = campaign.run().expect("valid campaign");
    for (drop_prob, result) in drop_probs.iter().zip(&results) {
        println!(
            "{:>10} {:>11.1}% {:>11.1}% {:>14.3}",
            format!("{:.0}%", drop_prob * 100.0),
            result.final_test.mean_accuracy * 100.0,
            result.final_test.std_accuracy * 100.0,
            result.total_comm_wh,
        );
    }

    println!(
        "\nreading: gossip averaging degrades gracefully — moderate loss slows\n\
         consensus (higher std across nodes) but learning still converges;\n\
         receive energy drops with the delivery rate."
    );
}
